#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace icc::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

Bignum Bignum::from_bytes(std::span<const std::uint8_t> bytes) {
  Bignum out;
  const std::size_t nbytes = bytes.size();
  if (nbytes > kMaxLimbs * 8) throw std::length_error("Bignum::from_bytes overflow");
  for (std::size_t i = 0; i < nbytes; ++i) {
    // bytes[0] is the most significant byte
    const std::size_t bit_pos = (nbytes - 1 - i) * 8;
    out.limb_[bit_pos / 64] |= u64{bytes[i]} << (bit_pos % 64);
  }
  out.n_ = static_cast<int>((nbytes * 8 + 63) / 64);
  out.trim();
  return out;
}

std::vector<std::uint8_t> Bignum::to_bytes(std::size_t width) const {
  std::size_t min_width = static_cast<std::size_t>((bit_length() + 7) / 8);
  if (min_width == 0) min_width = 1;
  if (width == 0) width = min_width;
  if (width < min_width) throw std::length_error("Bignum::to_bytes width too small");
  std::vector<std::uint8_t> out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bit_pos = (width - 1 - i) * 8;
    if (bit_pos / 64 < static_cast<std::size_t>(n_)) {
      out[i] = static_cast<std::uint8_t>(limb_[bit_pos / 64] >> (bit_pos % 64));
    }
  }
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  Bignum out;
  int bit = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    const char c = *it;
    u64 v = 0;
    if (c >= '0' && c <= '9') {
      v = static_cast<u64>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<u64>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<u64>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("Bignum::from_hex: bad character");
    }
    if (bit / 64 >= static_cast<int>(kMaxLimbs)) throw std::length_error("Bignum::from_hex overflow");
    out.limb_[static_cast<std::size_t>(bit / 64)] |= v << (bit % 64);
    bit += 4;
  }
  out.n_ = (bit + 63) / 64;
  out.trim();
  return out;
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (int i = n_ - 1; i >= 0; --i) {
    for (int nib = 15; nib >= 0; --nib) {
      const unsigned v = static_cast<unsigned>(limb_[static_cast<std::size_t>(i)] >> (nib * 4)) & 0xF;
      if (!started && v == 0) continue;
      started = true;
      out.push_back(kHex[v]);
    }
  }
  return out;
}

int Bignum::bit_length() const noexcept {
  if (n_ == 0) return 0;
  return n_ * 64 - std::countl_zero(limb_[static_cast<std::size_t>(n_ - 1)]);
}

bool Bignum::bit(int i) const noexcept {
  if (i < 0 || i / 64 >= n_) return false;
  return (limb_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1;
}

int Bignum::cmp(const Bignum& a, const Bignum& b) noexcept {
  if (a.n_ != b.n_) return a.n_ < b.n_ ? -1 : 1;
  for (int i = a.n_ - 1; i >= 0; --i) {
    const u64 x = a.limb_[static_cast<std::size_t>(i)];
    const u64 y = b.limb_[static_cast<std::size_t>(i)];
    if (x != y) return x < y ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::add(const Bignum& a, const Bignum& b) {
  Bignum out;
  const int n = std::max(a.n_, b.n_);
  if (n + 1 > static_cast<int>(kMaxLimbs)) throw std::length_error("Bignum::add overflow");
  u64 carry = 0;
  for (int i = 0; i < n; ++i) {
    const u128 s = u128{a.limb_[static_cast<std::size_t>(i)]} +
                   b.limb_[static_cast<std::size_t>(i)] + carry;
    out.limb_[static_cast<std::size_t>(i)] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  out.limb_[static_cast<std::size_t>(n)] = carry;
  out.n_ = n + (carry ? 1 : 0);
  out.trim();
  return out;
}

Bignum Bignum::add_u64(const Bignum& a, std::uint64_t v) { return add(a, Bignum{v}); }

Bignum Bignum::sub(const Bignum& a, const Bignum& b) {
  if (cmp(a, b) < 0) throw std::underflow_error("Bignum::sub: a < b");
  Bignum out;
  u64 borrow = 0;
  for (int i = 0; i < a.n_; ++i) {
    const u64 ai = a.limb_[static_cast<std::size_t>(i)];
    const u64 bi = i < b.n_ ? b.limb_[static_cast<std::size_t>(i)] : 0;
    const u64 t = ai - bi;
    const u64 borrow1 = t > ai ? 1 : 0;
    const u64 r = t - borrow;
    const u64 borrow2 = r > t ? 1 : 0;
    out.limb_[static_cast<std::size_t>(i)] = r;
    borrow = borrow1 | borrow2;
  }
  out.n_ = a.n_;
  out.trim();
  return out;
}

Bignum Bignum::mul(const Bignum& a, const Bignum& b) {
  if (a.is_zero() || b.is_zero()) return Bignum{};
  if (a.n_ + b.n_ > static_cast<int>(kMaxLimbs)) throw std::length_error("Bignum::mul overflow");
  Bignum out;
  for (int i = 0; i < a.n_; ++i) {
    u64 carry = 0;
    const u64 ai = a.limb_[static_cast<std::size_t>(i)];
    for (int j = 0; j < b.n_; ++j) {
      const u128 t = u128{ai} * b.limb_[static_cast<std::size_t>(j)] +
                     out.limb_[static_cast<std::size_t>(i + j)] + carry;
      out.limb_[static_cast<std::size_t>(i + j)] = static_cast<u64>(t);
      carry = static_cast<u64>(t >> 64);
    }
    out.limb_[static_cast<std::size_t>(i + b.n_)] += carry;
  }
  out.n_ = a.n_ + b.n_;
  out.trim();
  return out;
}

Bignum Bignum::mul_u64(const Bignum& a, std::uint64_t m) { return mul(a, Bignum{m}); }

Bignum Bignum::shifted_left(unsigned bits) const {
  Bignum out;
  const int limb_shift = static_cast<int>(bits / 64);
  const int bit_shift = static_cast<int>(bits % 64);
  if (n_ + limb_shift + 1 > static_cast<int>(kMaxLimbs)) {
    throw std::length_error("Bignum::shifted_left overflow");
  }
  for (int i = n_ - 1; i >= 0; --i) {
    const u64 v = limb_[static_cast<std::size_t>(i)];
    out.limb_[static_cast<std::size_t>(i + limb_shift)] |= bit_shift ? (v << bit_shift) : v;
    if (bit_shift && i + limb_shift + 1 < static_cast<int>(kMaxLimbs)) {
      out.limb_[static_cast<std::size_t>(i + limb_shift + 1)] |= v >> (64 - bit_shift);
    }
  }
  out.n_ = std::min<int>(n_ + limb_shift + 1, static_cast<int>(kMaxLimbs));
  out.trim();
  return out;
}

Bignum Bignum::shifted_right(unsigned bits) const {
  Bignum out;
  const int limb_shift = static_cast<int>(bits / 64);
  const int bit_shift = static_cast<int>(bits % 64);
  if (limb_shift >= n_) return out;
  for (int i = 0; i < n_ - limb_shift; ++i) {
    u64 v = limb_[static_cast<std::size_t>(i + limb_shift)] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < n_) {
      v |= limb_[static_cast<std::size_t>(i + limb_shift + 1)] << (64 - bit_shift);
    }
    out.limb_[static_cast<std::size_t>(i)] = v;
  }
  out.n_ = n_ - limb_shift;
  out.trim();
  return out;
}

void Bignum::divmod(const Bignum& a, const Bignum& b, Bignum& q, Bignum& r) {
  if (b.is_zero()) throw std::domain_error("Bignum::divmod: division by zero");
  q = Bignum{};
  r = Bignum{};
  if (cmp(a, b) < 0) {
    r = a;
    return;
  }
  if (b.n_ == 1) {
    // Short division.
    const u64 d = b.limb_[0];
    u64 rem = 0;
    q.n_ = a.n_;
    for (int i = a.n_ - 1; i >= 0; --i) {
      const u128 cur = (u128{rem} << 64) | a.limb_[static_cast<std::size_t>(i)];
      q.limb_[static_cast<std::size_t>(i)] = static_cast<u64>(cur / d);
      rem = static_cast<u64>(cur % d);
    }
    q.trim();
    r = Bignum{rem};
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  const int shift = std::countl_zero(b.limb_[static_cast<std::size_t>(b.n_ - 1)]);
  const Bignum v = b.shifted_left(static_cast<unsigned>(shift));
  Bignum u = a.shifted_left(static_cast<unsigned>(shift));
  const int n = v.n_;
  const int m = u.n_ - n;  // may be -? u >= v so m >= 0
  // Ensure u has an extra high limb u[m+n].
  // (limb_ array is zero beyond n_, so indexing is safe.)

  q = Bignum{};
  for (int j = m; j >= 0; --j) {
    const u64 ujn = u.limb_[static_cast<std::size_t>(j + n)];
    const u64 ujn1 = u.limb_[static_cast<std::size_t>(j + n - 1)];
    const u64 vn1 = v.limb_[static_cast<std::size_t>(n - 1)];
    const u64 vn2 = v.limb_[static_cast<std::size_t>(n - 2)];
    u128 qhat;
    u128 rhat;
    if (ujn == vn1) {
      qhat = (u128{1} << 64) - 1;
      rhat = (u128{ujn} << 64 | ujn1) - qhat * vn1;
    } else {
      const u128 num = (u128{ujn} << 64) | ujn1;
      qhat = num / vn1;
      rhat = num % vn1;
    }
    while (rhat <= ~u64{0} &&
           qhat * vn2 > ((rhat << 64) | u.limb_[static_cast<std::size_t>(j + n - 2)])) {
      --qhat;
      rhat += vn1;
    }

    // Multiply-and-subtract: u[j..j+n] -= qhat * v.
    u64 borrow = 0;
    u64 carry = 0;
    for (int i = 0; i < n; ++i) {
      const u128 p = qhat * v.limb_[static_cast<std::size_t>(i)] + carry;
      carry = static_cast<u64>(p >> 64);
      const u128 t = u128{u.limb_[static_cast<std::size_t>(i + j)]} -
                     static_cast<u64>(p) - borrow;
      u.limb_[static_cast<std::size_t>(i + j)] = static_cast<u64>(t);
      borrow = (t >> 64) ? 1 : 0;  // wrapped below zero
    }
    const u128 t = u128{u.limb_[static_cast<std::size_t>(j + n)]} - carry - borrow;
    u.limb_[static_cast<std::size_t>(j + n)] = static_cast<u64>(t);
    const bool went_negative = (t >> 64) != 0;

    u64 qj = static_cast<u64>(qhat);
    if (went_negative) {
      // Add back one v.
      --qj;
      u64 c = 0;
      for (int i = 0; i < n; ++i) {
        const u128 s = u128{u.limb_[static_cast<std::size_t>(i + j)]} +
                       v.limb_[static_cast<std::size_t>(i)] + c;
        u.limb_[static_cast<std::size_t>(i + j)] = static_cast<u64>(s);
        c = static_cast<u64>(s >> 64);
      }
      u.limb_[static_cast<std::size_t>(j + n)] += c;
    }
    q.limb_[static_cast<std::size_t>(j)] = qj;
  }
  q.n_ = m + 1;
  q.trim();

  // Remainder: u[0..n-1] shifted back.
  Bignum rem;
  for (int i = 0; i < n; ++i) rem.limb_[static_cast<std::size_t>(i)] = u.limb_[static_cast<std::size_t>(i)];
  rem.n_ = n;
  rem.trim();
  r = rem.shifted_right(static_cast<unsigned>(shift));
}

Bignum Bignum::div(const Bignum& a, const Bignum& b) {
  Bignum q;
  Bignum r;
  divmod(a, b, q, r);
  return q;
}

Bignum Bignum::mod(const Bignum& a, const Bignum& m) {
  Bignum q;
  Bignum r;
  divmod(a, m, q, r);
  return r;
}

std::uint64_t Bignum::mod_u64(std::uint64_t m) const {
  if (m == 0) throw std::domain_error("Bignum::mod_u64: division by zero");
  u64 rem = 0;
  for (int i = n_ - 1; i >= 0; --i) {
    const u128 cur = (u128{rem} << 64) | limb_[static_cast<std::size_t>(i)];
    rem = static_cast<u64>(cur % m);
  }
  return rem;
}

Bignum Bignum::modmul(const Bignum& a, const Bignum& b, const Bignum& m) {
  return mod(mul(a, b), m);
}

Bignum Bignum::modexp(const Bignum& base, const Bignum& exp, const Bignum& m) {
  if (m.is_zero()) throw std::domain_error("Bignum::modexp: zero modulus");
  if (m.is_one()) return Bignum{};
  Bignum result{1};
  Bignum acc = mod(base, m);
  const int bits = exp.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = modmul(result, acc, m);
    if (i + 1 < bits) acc = modmul(acc, acc, m);
  }
  return result;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  while (!b.is_zero()) {
    Bignum r = mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
  // Extended Euclid with explicitly tracked signs.
  Bignum r0 = mod(a, m);
  Bignum r1 = m;
  Bignum s0{1};
  bool s0_neg = false;
  Bignum s1{};
  bool s1_neg = false;
  while (!r1.is_zero()) {
    Bignum q;
    Bignum r2;
    divmod(r0, r1, q, r2);
    // s2 = s0 - q*s1 (signed)
    const Bignum qs1 = mul(q, s1);
    Bignum s2;
    bool s2_neg;
    if (s0_neg == s1_neg) {
      // same sign: s0 - q*s1 may flip
      if (cmp(s0, qs1) >= 0) {
        s2 = sub(s0, qs1);
        s2_neg = s0_neg;
      } else {
        s2 = sub(qs1, s0);
        s2_neg = !s0_neg;
      }
    } else {
      s2 = add(s0, qs1);
      s2_neg = s0_neg;
    }
    r0 = r1;
    r1 = r2;
    s0 = s1;
    s0_neg = s1_neg;
    s1 = s2;
    s1_neg = s2_neg;
  }
  if (!r0.is_one()) throw std::domain_error("Bignum::mod_inverse: not invertible");
  Bignum inv = mod(s0, m);
  if (s0_neg && !inv.is_zero()) inv = sub(m, inv);
  return inv;
}

}  // namespace icc::crypto
