#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace icc::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> msg) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>{ipad});
  inner.update(msg);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>{opad});
  outer.update(std::span<const std::uint8_t>{inner_digest});
  return outer.finish();
}

Digest hmac_sha256(const Digest& key, std::string_view msg) {
  return hmac_sha256(std::span<const std::uint8_t>{key},
                     std::span{reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
}

Digest hmac_sha256(const Digest& key, std::span<const std::uint8_t> msg) {
  return hmac_sha256(std::span<const std::uint8_t>{key}, msg);
}

bool digest_equal(const Digest& a, const Digest& b) noexcept {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<unsigned>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace icc::crypto
