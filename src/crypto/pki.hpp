// Individual (non-threshold) node signatures.
//
// Statistical voting forwards each participant's value message inside the
// propose message, and verifiers must check those value messages really came
// from the claimed senders (Fig 3b, "p verifies that the included signatures
// are valid"). That needs ordinary per-node signatures; this header provides
// the abstraction plus a simulation-grade implementation (per-node HMAC keys
// held by a dealer oracle — same modeling rationale as ModelThresholdScheme)
// and a real-RSA implementation for tests.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"

namespace icc::crypto {

/// A node's private signing capability.
class NodeSigner {
 public:
  virtual ~NodeSigner() = default;
  [[nodiscard]] virtual std::uint32_t id() const = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> sign(
      std::span<const std::uint8_t> msg) const = 0;
};

/// Public verification side + dealer.
class Pki {
 public:
  virtual ~Pki() = default;
  [[nodiscard]] virtual std::unique_ptr<NodeSigner> issue_signer(std::uint32_t id) = 0;
  [[nodiscard]] virtual bool verify(std::uint32_t id, std::span<const std::uint8_t> msg,
                                    std::span<const std::uint8_t> sig) const = 0;
  [[nodiscard]] virtual std::size_t signature_bytes() const = 0;
};

/// Simulation-grade PKI: per-node HMAC keys derived from a dealer seed.
class ModelPki final : public Pki {
 public:
  /// `key_bits` only scales the modeled on-air signature size.
  ModelPki(std::uint64_t seed, int key_bits);

  [[nodiscard]] std::unique_ptr<NodeSigner> issue_signer(std::uint32_t id) override;
  [[nodiscard]] bool verify(std::uint32_t id, std::span<const std::uint8_t> msg,
                            std::span<const std::uint8_t> sig) const override;
  [[nodiscard]] std::size_t signature_bytes() const override { return sig_bytes_; }

 private:
  [[nodiscard]] Digest node_key(std::uint32_t id) const;
  Digest seed_key_{};
  std::size_t sig_bytes_;
};

/// Real RSA PKI over per-node keypairs.
class RsaPki final : public Pki {
 public:
  RsaPki(int key_bits, std::uint32_t num_nodes, WordSource words);

  [[nodiscard]] std::unique_ptr<NodeSigner> issue_signer(std::uint32_t id) override;
  [[nodiscard]] bool verify(std::uint32_t id, std::span<const std::uint8_t> msg,
                            std::span<const std::uint8_t> sig) const override;
  [[nodiscard]] std::size_t signature_bytes() const override;

 private:
  std::vector<RsaKeyPair> keys_;
};

}  // namespace icc::crypto
