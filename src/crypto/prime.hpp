// Probabilistic prime generation: trial division plus Miller–Rabin.
#pragma once

#include <cstdint>
#include <functional>

#include "crypto/bignum.hpp"

namespace icc::crypto {

/// Source of uniform 64-bit words (an adapter over sim::Rng or any engine).
using WordSource = std::function<std::uint64_t()>;

/// Miller–Rabin with `rounds` random bases. Error probability <= 4^-rounds.
bool is_probable_prime(const Bignum& n, int rounds, WordSource words);

/// Uniform random probable prime with exactly `bits` bits.
Bignum random_prime(int bits, WordSource words, int rounds = 24);

/// Random prime p such that p mod e != 1, so that e is invertible mod p-1
/// (required for RSA key generation with public exponent e).
Bignum random_rsa_prime(int bits, std::uint64_t e, WordSource words, int rounds = 24);

}  // namespace icc::crypto
