#include "crypto/prime.hpp"

#include <array>

namespace icc::crypto {

namespace {

// Primes below 1000 for cheap trial-division prefiltering.
constexpr std::array<std::uint16_t, 167> kSmallPrimes = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
    479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577,
    587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661,
    673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769,
    773, 787, 797, 809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877,
    881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983,
    991, 997};

}  // namespace

bool is_probable_prime(const Bignum& n, int rounds, WordSource words) {
  if (n.is_zero() || n.is_one()) return false;
  if (!n.is_odd()) return n == Bignum{2};
  for (const std::uint16_t p : kSmallPrimes) {
    if (n == Bignum{p}) return true;
    if (n.mod_u64(p) == 0) return false;
  }

  // n - 1 = d * 2^r with d odd.
  const Bignum n_minus_1 = Bignum::sub(n, Bignum{1});
  Bignum d = n_minus_1;
  int r = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++r;
  }

  const int bits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Random base a in [2, n-2]: draw bits-wide values until in range.
    Bignum a;
    do {
      a = Bignum::mod(Bignum::random_bits(bits, words), n);
    } while (a.is_zero() || a.is_one() || a == n_minus_1);

    Bignum x = Bignum::modexp(a, d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = Bignum::modmul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Bignum random_prime(int bits, WordSource words, int rounds) {
  for (;;) {
    Bignum candidate = Bignum::random_bits(bits, words);
    if (!candidate.is_odd()) candidate = Bignum::add_u64(candidate, 1);
    if (is_probable_prime(candidate, rounds, words)) return candidate;
  }
}

Bignum random_rsa_prime(int bits, std::uint64_t e, WordSource words, int rounds) {
  for (;;) {
    const Bignum p = random_prime(bits, words, rounds);
    if (Bignum::sub(p, Bignum{1}).mod_u64(e) != 0) return p;
  }
}

}  // namespace icc::crypto
