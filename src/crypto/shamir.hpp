// Shamir polynomial secret sharing over Z_m.
//
// Used by the threshold-RSA dealer to split the private exponent, and
// standalone (over a prime modulus) as the paper's "(L+1)-threshold share of
// K_L" abstraction (§2).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"
#include "crypto/prime.hpp"

namespace icc::crypto {

struct ShamirShare {
  std::uint32_t index;  ///< x-coordinate, 1-based
  Bignum value;         ///< f(index) mod m
};

/// Split `secret` into `num_shares` shares over Z_m such that any
/// `threshold` of them determine it (polynomial degree threshold-1).
std::vector<ShamirShare> shamir_share(const Bignum& secret, const Bignum& modulus,
                                      std::uint32_t num_shares, std::uint32_t threshold,
                                      WordSource words);

/// Reconstruct the secret from >= threshold shares. Requires a *prime*
/// modulus (Lagrange interpolation needs inverses); the threshold-RSA
/// combiner avoids this requirement with the Delta = l! trick instead.
Bignum shamir_reconstruct(const std::vector<ShamirShare>& shares, const Bignum& prime_modulus);

}  // namespace icc::crypto
