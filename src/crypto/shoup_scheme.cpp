#include "crypto/shoup_scheme.hpp"

#include <stdexcept>

namespace icc::crypto {

namespace {

class ShoupSigner final : public ThresholdSigner {
 public:
  ShoupSigner(std::uint32_t id, const ShoupThresholdScheme& scheme,
              std::vector<ShamirShare> shares)
      : id_{id}, scheme_{scheme}, shares_{std::move(shares)} {}

  [[nodiscard]] std::uint32_t id() const override { return id_; }

  [[nodiscard]] PartialSig partial_sign(int level,
                                        std::span<const std::uint8_t> msg) const override {
    PartialSig ps;
    ps.signer = id_;
    ps.level = level;
    if (level < 1 || level > scheme_.max_level()) return ps;
    const ThresholdRsa& key = scheme_.key(level);
    const ThresholdRsa::PartialSignature raw =
        key.partial_sign(shares_[static_cast<std::size_t>(level - 1)], msg);
    ps.data = raw.value.to_bytes(key.public_key().modulus_bytes());
    return ps;
  }

 private:
  std::uint32_t id_;
  const ShoupThresholdScheme& scheme_;
  std::vector<ShamirShare> shares_;  ///< one per level, index level-1
};

}  // namespace

ShoupThresholdScheme::ShoupThresholdScheme(int key_bits, std::uint32_t num_players,
                                           int max_level, WordSource words) {
  if (max_level < 1) throw std::invalid_argument("ShoupThresholdScheme: max_level >= 1");
  keys_.reserve(static_cast<std::size_t>(max_level));
  for (int level = 1; level <= max_level; ++level) {
    const std::uint32_t threshold = static_cast<std::uint32_t>(level) + 1;
    if (threshold > num_players) {
      throw std::invalid_argument("ShoupThresholdScheme: level+1 exceeds player count");
    }
    keys_.push_back(ThresholdRsa::deal(key_bits, num_players, threshold, words));
  }
  sig_bytes_ = keys_.front().public_key().modulus_bytes();
}

std::unique_ptr<ThresholdSigner> ShoupThresholdScheme::issue_signer(std::uint32_t id) {
  std::vector<ShamirShare> shares;
  shares.reserve(keys_.size());
  for (const ThresholdRsa& key : keys_) shares.push_back(key.share(id));
  return std::make_unique<ShoupSigner>(id, *this, std::move(shares));
}

bool ShoupThresholdScheme::verify_partial(std::span<const std::uint8_t> msg,
                                          const PartialSig& ps) const {
  // Without Shoup's ZK correctness proofs, a single partial is validated by
  // recomputing it from the dealer-side share (the dealer is trusted, §2).
  if (ps.level < 1 || ps.level > max_level()) return false;
  const ThresholdRsa& key = keys_[static_cast<std::size_t>(ps.level - 1)];
  if (ps.signer >= key.num_players()) return false;
  const ThresholdRsa::PartialSignature expected = key.partial_sign(key.share(ps.signer), msg);
  return expected.value.to_bytes(key.public_key().modulus_bytes()) == ps.data;
}

std::optional<ThresholdSignature> ShoupThresholdScheme::combine(
    int level, std::span<const std::uint8_t> msg,
    std::span<const PartialSig> partials) const {
  if (level < 1 || level > max_level()) return std::nullopt;
  const ThresholdRsa& key = keys_[static_cast<std::size_t>(level - 1)];
  std::vector<ThresholdRsa::PartialSignature> raw;
  raw.reserve(partials.size());
  for (const PartialSig& ps : partials) {
    if (ps.level != level || ps.signer >= key.num_players()) continue;
    raw.push_back(ThresholdRsa::PartialSignature{
        ps.signer + 1, Bignum::from_bytes(ps.data)});  // share indices are 1-based
  }
  const std::optional<Bignum> sigma = key.combine(raw, msg);
  if (!sigma) return std::nullopt;
  ThresholdSignature sig;
  sig.level = level;
  sig.data = sigma->to_bytes(key.public_key().modulus_bytes());
  return sig;
}

bool ShoupThresholdScheme::verify(std::span<const std::uint8_t> msg,
                                  const ThresholdSignature& sig) const {
  if (sig.level < 1 || sig.level > max_level()) return false;
  const ThresholdRsa& key = keys_[static_cast<std::size_t>(sig.level - 1)];
  if (sig.data.size() != key.public_key().modulus_bytes()) return false;
  return key.verify(msg, Bignum::from_bytes(sig.data));
}

}  // namespace icc::crypto
