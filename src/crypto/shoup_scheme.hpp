// ThresholdScheme adapter over real Shoup threshold RSA: one independently
// dealt RSA key per dependability level L, with signing threshold L+1.
//
// Intended for unit/integration tests, the crypto micro-benchmarks, and
// small end-to-end simulations; network-scale runs use ModelThresholdScheme
// for CPU reasons (DESIGN.md §3).
#pragma once

#include <vector>

#include "crypto/scheme.hpp"
#include "crypto/threshold_rsa.hpp"

namespace icc::crypto {

class ShoupThresholdScheme final : public ThresholdScheme {
 public:
  /// Deals `max_level` keys among `num_players`; level L requires L+1
  /// cooperating players.
  ShoupThresholdScheme(int key_bits, std::uint32_t num_players, int max_level,
                       WordSource words);

  [[nodiscard]] int max_level() const override { return static_cast<int>(keys_.size()); }
  [[nodiscard]] std::unique_ptr<ThresholdSigner> issue_signer(std::uint32_t id) override;
  [[nodiscard]] bool verify_partial(std::span<const std::uint8_t> msg,
                                    const PartialSig& ps) const override;
  [[nodiscard]] std::optional<ThresholdSignature> combine(
      int level, std::span<const std::uint8_t> msg,
      std::span<const PartialSig> partials) const override;
  [[nodiscard]] bool verify(std::span<const std::uint8_t> msg,
                            const ThresholdSignature& sig) const override;
  [[nodiscard]] std::size_t partial_sig_bytes() const override { return sig_bytes_; }
  [[nodiscard]] std::size_t signature_bytes() const override { return sig_bytes_; }

  /// Direct access to the level-L key (tests, benchmarks).
  [[nodiscard]] const ThresholdRsa& key(int level) const { return keys_.at(static_cast<std::size_t>(level - 1)); }

 private:
  std::vector<ThresholdRsa> keys_;  ///< index L-1
  std::size_t sig_bytes_{0};
};

}  // namespace icc::crypto
