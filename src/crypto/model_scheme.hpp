// Simulation-grade threshold signature scheme.
//
// The dealer derives master key K_L = HMAC(seed, L) per level and node
// shares S_{L,i} = HMAC(K_L, i). A partial signature is HMAC(S_{L,i}, msg);
// the combine/verify operations recompute tags with the dealer's keys. In a
// simulation the ModelThresholdScheme instance *is* the mathematics: a node
// can only produce the partial tag for ids whose ThresholdSigner it holds,
// so the protocol-visible guarantees match real threshold RSA — forging a
// level-L signature requires L+1 distinct compromised signers.
//
// Reported on-air sizes follow the configured RSA key length so that
// bandwidth and energy accounting match a real deployment (paper uses
// 1024-bit keys for AODV, 512-bit for the sensor study).
#pragma once

#include <string>

#include "crypto/hmac.hpp"
#include "crypto/scheme.hpp"

namespace icc::crypto {

class ModelThresholdScheme final : public ThresholdScheme {
 public:
  /// `key_bits` only affects the reported on-air signature sizes.
  ModelThresholdScheme(std::uint64_t seed, int max_level, int key_bits);

  [[nodiscard]] int max_level() const override { return max_level_; }
  [[nodiscard]] std::unique_ptr<ThresholdSigner> issue_signer(std::uint32_t id) override;
  [[nodiscard]] bool verify_partial(std::span<const std::uint8_t> msg,
                                    const PartialSig& ps) const override;
  [[nodiscard]] std::optional<ThresholdSignature> combine(
      int level, std::span<const std::uint8_t> msg,
      std::span<const PartialSig> partials) const override;
  [[nodiscard]] bool verify(std::span<const std::uint8_t> msg,
                            const ThresholdSignature& sig) const override;
  [[nodiscard]] std::size_t partial_sig_bytes() const override { return sig_bytes_; }
  [[nodiscard]] std::size_t signature_bytes() const override { return sig_bytes_; }

 private:
  friend class ModelSigner;
  [[nodiscard]] Digest master_key(int level) const;
  [[nodiscard]] Digest share_key(int level, std::uint32_t id) const;

  Digest seed_key_{};
  int max_level_;
  std::size_t sig_bytes_;
};

}  // namespace icc::crypto
