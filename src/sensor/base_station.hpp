// The base station (upper-layer gateway of the §3/§5.2 hierarchy): receives
// target notifications over diffusion and keeps the detection log the
// experiment metrics are computed from. In inner-circle mode it accepts only
// notifications wrapped in a valid level-L agreed message (the Integrity
// property — the base station trusts no individual sensor).
#pragma once

#include <unordered_map>
#include <vector>

#include "crypto/scheme.hpp"
#include "sensor/diffusion.hpp"
#include "sensor/readings.hpp"

namespace icc::sensor {

// icc:affinity(node)
class BaseStation {
 public:
  struct Detection {
    sim::Time arrival{0.0};    ///< when the notification reached the station
    sim::Time claimed_t{0.0};  ///< the detection time the notification reports
    sim::Vec2 pos;             ///< reported target position
    std::uint32_t detectors{1};
    sim::NodeId reporter{sim::kNoNode};
  };

  /// Centralized detection rule: the station declares a target when one
  /// sensor's stream shows `debounce` consecutive over-threshold readings
  /// (the temporal corroboration that keeps the per-sensor false-alarm rate
  /// in check when no spatial corroboration is available).
  struct CentralizedRule {
    double lambda{6.635};
    sim::Time sample_period{5.0};
    int debounce{2};
  };

  /// `scheme` non-null => inner-circle mode (verify agreed messages).
  BaseStation(net::Host& node, Diffusion& diffusion, const crypto::ThresholdScheme* scheme,
              CentralizedRule rule);

  [[nodiscard]] const std::vector<Detection>& detections() const noexcept {
    return detections_;
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  [[nodiscard]] std::uint64_t readings_received() const noexcept { return readings_; }

 private:
  void handle_notification(const NotificationMsg& msg);

  struct SensorStream {
    sim::Time last_t{-1e18};
    int consecutive{0};
  };

  net::Host& node_;
  const crypto::ThresholdScheme* scheme_;
  CentralizedRule rule_;
  std::vector<Detection> detections_;
  std::unordered_map<sim::NodeId, SensorStream> streams_;
  std::uint64_t rejected_{0};
  std::uint64_t readings_{0};
};

}  // namespace icc::sensor
