// Sensor-node application for the target detection/localization study
// (§5.2), in its two configurations:
//
//  * Centralized ("No IC"): every sensor that detects (with a consecutive-
//    sample debounce to keep its individual false-alarm rate in check)
//    sends its raw reading <t, E, u> to the base station over diffusion.
//
//  * Inner-circle: the first detector of an epoch becomes the center of a
//    statistical voting round; its circle contributes readings, the
//    FT-cluster fusion builds one validated, threshold-signed notification,
//    and circle members observing the agreed broadcast suppress their own
//    redundant notifications for that epoch.
#pragma once

#include <memory>
#include <optional>

#include "core/framework.hpp"
#include "fault/schedule.hpp"
#include "sensor/diffusion.hpp"
#include "sim/node.hpp"
#include "sensor/field.hpp"
#include "sensor/fusion_rules.hpp"
#include "sensor/readings.hpp"

namespace icc::sensor {

// icc:affinity(node)
class SensorApp {
 public:
  struct Params {
    sim::Time sample_period{5.0};
    int debounce{2};  ///< centralized mode: consecutive detections required
    FaultType fault{FaultType::kNone};
    FaultParams fault_params{};
    /// When the fault corrupts samples (fault::SensorFault::when). Position
    /// error is the exception: the bad self-position is drawn once at
    /// startup, so the schedule only gates which *samples* ship it.
    fault::Schedule fault_when{fault::Schedule::always()};
    FusionParams fusion{};
    sim::Time suppression_window{6.0};  ///< IC: mute after an observed agreement
  };

  /// Centralized sensor (`icc == nullptr`) or inner-circle sensor.
  SensorApp(sim::Node& node, Diffusion& diffusion, const TargetField& field, Params params,
            core::InnerCircleNode* icc);

  [[nodiscard]] const Reading& latest_reading() const noexcept { return latest_; }
  [[nodiscard]] sim::Vec2 reported_position() const noexcept { return reported_pos_; }
  [[nodiscard]] FaultType fault() const noexcept { return params_.fault; }

 private:
  void sample_tick();
  void install_callbacks();
  [[nodiscard]] bool suppressed() const;
  /// One on-demand or periodic measurement: the configured fault is applied
  /// only inside its schedule, and every faulty sample is reported to the
  /// coverage ledger as an injected sensor fault.
  [[nodiscard]] double measure(sim::Time t);

  sim::Node& node_;
  Diffusion& diffusion_;
  const TargetField& field_;
  Params params_;
  core::InnerCircleNode* icc_;
  sim::Rng rng_;

  sim::Vec2 reported_pos_;  ///< == true position unless kPositionError
  Reading latest_{};
  bool has_reading_{false};
  int consecutive_{0};
  sim::Time last_agreed_seen_{-1e18};
  /// Reading ids the most recent local fusion rejected; on an agreement this
  /// node centered, those rejections become *neutralized* ledger rows (the
  /// faulty readings were kept out of the accepted notification).
  std::vector<sim::NodeId> last_fused_dropped_;
};

}  // namespace icc::sensor
