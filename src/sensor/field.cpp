#include "sensor/field.hpp"

namespace icc::sensor {

TargetField TargetField::periodic(SignalModel model, sim::Time sim_time, sim::Time period,
                                  sim::Time duration, double area, sim::Rng& rng,
                                  sim::Time first_start) {
  std::vector<TargetEvent> events;
  for (sim::Time t = first_start; t + duration <= sim_time; t += period) {
    TargetEvent event;
    event.start = t;
    event.duration = duration;
    // Keep the target inside the bulk of the field so a circle around it
    // exists (uniform with a 15% margin).
    const double margin = 0.15 * area;
    event.location = {rng.uniform(margin, area - margin), rng.uniform(margin, area - margin)};
    events.push_back(event);
  }
  return TargetField{model, std::move(events)};
}

std::optional<sim::Vec2> TargetField::active_target(sim::Time t) const {
  for (const TargetEvent& event : events_) {
    if (event.active_at(t)) return event.location;
  }
  return std::nullopt;
}

double TargetField::measure(sim::Vec2 pos, sim::Time t, sim::Rng& rng) const {
  return sample(pos, t, FaultType::kNone, FaultParams{}, rng);
}

double TargetField::sample(sim::Vec2 pos, sim::Time t, FaultType fault,
                           const FaultParams& params, sim::Rng& rng) const {
  double s = 0.0;
  if (const auto u = active_target(t)) s = model_.signal(sim::distance(pos, *u));
  const double n = rng.normal(0.0, model_.sigma_n);
  return fault::apply_sensor_fault(fault, s, n * n, params);
}

}  // namespace icc::sensor
