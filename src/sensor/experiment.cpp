#include "sensor/experiment.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/framework.hpp"
#include "fault/injector.hpp"
#include "crypto/model_scheme.hpp"
#include "crypto/pki.hpp"
#include "sensor/app.hpp"
#include "sensor/base_station.hpp"
#include "sensor/diffusion.hpp"
#include "sim/flight.hpp"
#include "sim/world.hpp"

namespace icc::sensor {

SensorExperimentResult run_sensor_experiment(const SensorExperimentConfig& config) {
  sim::WorldConfig world_config;
  world_config.width = config.area;
  world_config.height = config.area;
  world_config.tx_range = config.tx_range;
  world_config.seed = config.seed;
  sim::World world{world_config};

  sim::Rng layout_rng = world.fork_rng(0x5E01ull);
  sim::Rng fault_rng = world.fork_rng(0x5E02ull);
  sim::Rng field_rng = world.fork_rng(0x5E03ull);

  const TargetField field =
      config.with_target
          ? TargetField::periodic(config.signal, config.sim_time, config.target_period,
                                  config.target_duration, config.area, field_rng)
          : TargetField{config.signal, {}};

  crypto::ModelThresholdScheme scheme{config.seed, std::max(config.level, 1),
                                      config.key_bits};
  crypto::ModelPki pki{config.seed ^ 0xA5A5ull, config.key_bits};
  crypto::ModelCipher cipher;

  // Node 0 is the base station at the field corner; sensors are uniform.
  sim::Node& bs_node = world.add_node(std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  Diffusion::Params diff_params;
  auto bs_diffusion = std::make_unique<Diffusion>(bs_node, bs_node.id(), diff_params);
  BaseStation::CentralizedRule rule;
  rule.lambda = config.signal.lambda;
  rule.sample_period = config.sample_period;
  rule.debounce = config.debounce;
  BaseStation station{bs_node, *bs_diffusion, config.inner_circle ? &scheme : nullptr, rule};

  // Which sensors are faulty. Explicit plan specs override the uniform
  // num_faulty draw (fault_rng is forked either way, so the downstream fork
  // order — and every legacy number — is unchanged when the plan is empty).
  std::map<sim::NodeId, const fault::SensorFault*> sensor_faults;
  std::set<int> faulty;
  if (!config.plan.sensor.empty()) {
    for (const fault::SensorFault& spec : config.plan.sensor) {
      sensor_faults.emplace(spec.node, &spec);
    }
  } else {
    while (static_cast<int>(faulty.size()) < std::min(config.num_faulty, config.num_sensors)) {
      faulty.insert(static_cast<int>(
          fault_rng.uniform_int(1, static_cast<std::uint32_t>(config.num_sensors))));
    }
  }

  std::vector<std::unique_ptr<Diffusion>> diffusions;
  std::vector<std::unique_ptr<core::InnerCircleNode>> circles;
  std::vector<std::unique_ptr<SensorApp>> apps;

  for (int i = 1; i <= config.num_sensors; ++i) {
    sim::Node& node = world.add_node(std::make_unique<sim::StaticMobility>(
        layout_rng.point_in(config.area, config.area)));
    diffusions.push_back(std::make_unique<Diffusion>(node, bs_node.id(), diff_params));

    core::InnerCircleNode* icc = nullptr;
    if (config.inner_circle) {
      core::InnerCircleConfig icc_config;
      icc_config.level = config.level;
      icc_config.mode = core::VotingMode::kStatistical;
      icc_config.sts.delta_sts = config.delta_sts;
      icc_config.sts.initial_beacon_delay = 2.0;  // fast cold start
      icc_config.ivs.cost = config.cost;
      circles.push_back(std::make_unique<core::InnerCircleNode>(node, icc_config, scheme,
                                                                pki, cipher));
      icc = circles.back().get();
    }

    SensorApp::Params app_params;
    app_params.sample_period = config.sample_period;
    app_params.debounce = config.inner_circle ? 1 : config.debounce;
    const auto spec_it = sensor_faults.find(static_cast<sim::NodeId>(i));
    if (spec_it != sensor_faults.end()) {
      app_params.fault = spec_it->second->type;
      app_params.fault_params = spec_it->second->params;
      app_params.fault_when = spec_it->second->when;
    } else {
      app_params.fault = faulty.count(i) != 0 ? config.fault : FaultType::kNone;
      app_params.fault_params = config.fault_params;
    }
    app_params.fusion = config.fusion;
    apps.push_back(std::make_unique<SensorApp>(node, *diffusions.back(), field, app_params,
                                               icc));
    if (icc != nullptr) icc->start();
  }

  // Channel and node faults go live last: with neither in the plan the
  // engine forks no RNG and installs no hooks, preserving legacy numbers.
  std::optional<fault::InjectionEngine> engine;
  if (!config.plan.channel.empty() || !config.plan.node.empty()) {
    engine.emplace(world, config.plan);
  }

  world.run_until(config.sim_time);

  // ----------------------------------------------------------- metrics
  SensorExperimentResult result;
  const fault::CoverageLedger ledger{world};
  result.coverage = ledger.rows();
  result.coverage_consistent = ledger.consistent();
  // A ledger violation is a post-mortem situation: dump the flight recorder
  // while the world (and its recent history) is still alive.
  if (!result.coverage_consistent) {
    sim::dump_all_flight_recorders("coverage-ledger inconsistency");
  }
  result.notifications = static_cast<std::uint64_t>(world.stats().get("sensor.notifications"));
  result.bs_detections = station.detections().size();
  result.bs_rejected = station.rejected();

  // Per-target: detected iff some notification whose claimed detection time
  // falls inside the target window arrived during (or shortly after) it.
  const sim::Time grace = 2.0 * config.sample_period;
  result.targets = field.events().size();
  double latency_sum = 0.0;
  double error_sum = 0.0;
  for (const TargetEvent& event : field.events()) {
    const BaseStation::Detection* first = nullptr;
    for (const BaseStation::Detection& d : station.detections()) {
      if (d.claimed_t >= event.start && d.claimed_t < event.start + event.duration &&
          d.arrival < event.start + event.duration + grace) {
        if (first == nullptr || d.arrival < first->arrival) first = &d;
      }
    }
    if (first != nullptr) {
      ++result.targets_detected;
      latency_sum += first->arrival - event.start;
      error_sum += sim::distance(first->pos, event.location);
    }
  }
  if (result.targets > 0) {
    result.miss_prob = 1.0 - static_cast<double>(result.targets_detected) /
                                 static_cast<double>(result.targets);
  }
  if (result.targets_detected > 0) {
    result.detection_latency_s = latency_sum / static_cast<double>(result.targets_detected);
    result.localization_error_m = error_sum / static_cast<double>(result.targets_detected);
  }

  // False alarms: sampling epochs (5 s buckets) with no target in which the
  // station accepted a notification claiming a detection.
  const auto in_target_window = [&](sim::Time t) {
    for (const TargetEvent& event : field.events()) {
      if (t >= event.start - config.sample_period &&
          t < event.start + event.duration + config.sample_period) {
        return true;
      }
    }
    return false;
  };
  std::set<std::int64_t> spurious_epochs;
  for (const BaseStation::Detection& d : station.detections()) {
    if (!in_target_window(d.claimed_t)) {
      spurious_epochs.insert(static_cast<std::int64_t>(d.claimed_t / config.sample_period));
    }
  }
  std::int64_t quiet_epochs = 0;
  for (sim::Time t = 0.0; t < config.sim_time; t += config.sample_period) {
    if (!in_target_window(t)) ++quiet_epochs;
  }
  result.false_alarm_prob = quiet_epochs > 0 ? static_cast<double>(spurious_epochs.size()) /
                                                   static_cast<double>(quiet_epochs)
                                             : 0.0;

  // Energy: per-sensor (the mains-powered base station is excluded).
  // "Active" energy counts radio tx/rx plus crypto and models duty-cycled
  // sensors whose idle radio is off (DESIGN.md §3); total includes idle.
  const auto& energy_params = world.config().energy;
  double active_sum = 0.0;
  double total_sum = 0.0;
  for (sim::NodeId i = 1; i < world.num_nodes(); ++i) {
    const sim::EnergyMeter& meter = world.node(i).energy();
    active_sum += energy_params.tx_w * meter.tx_time() + energy_params.rx_w * meter.rx_time() +
                  meter.extra_joules();
    total_sum += meter.total_joules(energy_params, world.now());
  }
  const double n = static_cast<double>(config.num_sensors);
  result.active_energy_mj = 1000.0 * active_sum / n;
  result.total_energy_j = total_sum / n;
  return result;
}

SensorExperimentResult run_sensor_experiment_averaged(SensorExperimentConfig config,
                                                      int runs) {
  SensorExperimentResult total;
  for (int r = 0; r < runs; ++r) {
    config.seed = config.seed * 6364136223846793005ull + 1442695040888963407ull;
    const SensorExperimentResult one = run_sensor_experiment(config);
    total.miss_prob += one.miss_prob;
    total.false_alarm_prob += one.false_alarm_prob;
    total.active_energy_mj += one.active_energy_mj;
    total.total_energy_j += one.total_energy_j;
    total.detection_latency_s += one.detection_latency_s;
    total.localization_error_m += one.localization_error_m;
    total.notifications += one.notifications;
    total.bs_detections += one.bs_detections;
    total.bs_rejected += one.bs_rejected;
    total.targets += one.targets;
    total.targets_detected += one.targets_detected;
    total.coverage = one.coverage;
    total.coverage_consistent = total.coverage_consistent && one.coverage_consistent;
    total.miss_prob_runs.add(one.miss_prob);
    total.false_alarm_runs.add(one.false_alarm_prob);
    total.active_energy_runs.add(one.active_energy_mj);
    total.latency_runs.add(one.detection_latency_s);
  }
  const double k = runs > 0 ? static_cast<double>(runs) : 1.0;
  total.miss_prob /= k;
  total.false_alarm_prob /= k;
  total.active_energy_mj /= k;
  total.total_energy_j /= k;
  total.detection_latency_s /= k;
  total.localization_error_m /= k;
  return total;
}

}  // namespace icc::sensor
