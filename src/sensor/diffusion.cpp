#include "sensor/diffusion.hpp"

#include "sim/trace.hpp"

namespace icc::sensor {

namespace {
constexpr std::uint64_t kDiffRngSalt = 0xD1FFull;
}

Diffusion::Diffusion(net::Host& node, sim::NodeId sink, Params params)
    : node_{node},
      sink_{sink},
      params_{params},
      rng_{node.fork_rng(kDiffRngSalt + node.id())} {
  node_.transport().register_handler(sim::Port::kDiffusion,
                                     [this](const sim::Packet& p, sim::NodeId from) {
                                       handle_packet(p, from);
                                     });
  if (node_.id() == sink_) {
    node_.clock().schedule_in(params_.first_interest, [this] { flood_interest(); },
                              net::EventTag::kSensor);
  }
}

bool Diffusion::has_gradient() const {
  return node_.id() == sink_ ||
         (parent_ != sim::kNoNode &&
          node_.now() - gradient_time_ <= params_.gradient_lifetime);
}

void Diffusion::flood_interest() {
  auto interest = std::make_shared<InterestMsg>();
  interest->sink = node_.id();
  interest->seq = ++interest_seq_;
  interest->hops = 0;

  sim::Packet packet;
  packet.src = node_.id();
  packet.dst = sim::kBroadcast;
  packet.port = sim::Port::kDiffusion;
  packet.size_bytes = InterestMsg::kWireSize;
  packet.body = std::move(interest);
  node_.transport().send(std::move(packet), sim::kBroadcast);
  node_.stats().add("diff.interests_sent");

  node_.clock().schedule_in(params_.interest_period, [this] { flood_interest(); },
                            net::EventTag::kSensor);
}

void Diffusion::handle_packet(const sim::Packet& packet, sim::NodeId from) {
  if (const auto* interest = packet.body_as<InterestMsg>()) {
    if (node_.id() == sink_ || interest->sink != sink_) return;
    const bool fresher = interest->seq > best_seq_;
    const bool better = interest->seq == best_seq_ && interest->hops + 1 < best_hops_;
    if (!fresher && !better) return;
    best_seq_ = interest->seq;
    best_hops_ = interest->hops + 1;
    parent_ = from;
    gradient_time_ = node_.now();

    auto fwd = std::make_shared<InterestMsg>(*interest);
    fwd->hops += 1;
    sim::Packet p;
    p.src = node_.id();
    p.dst = sim::kBroadcast;
    p.port = sim::Port::kDiffusion;
    p.size_bytes = InterestMsg::kWireSize;
    p.body = std::move(fwd);
    // Jitter the re-flood so neighboring rebroadcasts do not collide.
    node_.clock().schedule_in(rng_.uniform(0.0, 0.02), [this, p = std::move(p)] {
      node_.transport().send(sim::Packet{p}, sim::kBroadcast);
    }, net::EventTag::kSensor);
    return;
  }
  if (const auto* notification = packet.body_as<NotificationMsg>()) {
    if (node_.id() == sink_) {
      node_.stats().add("diff.notifications_delivered");
      if (sink_handler_) sink_handler_(*notification, from);
    } else {
      forward(*notification);
    }
  }
}

void Diffusion::send_to_sink(std::vector<std::uint8_t> data) {
  auto msg = std::make_shared<NotificationMsg>();
  msg->origin = node_.id();
  msg->uid = next_uid_++;
  msg->data = std::move(data);
  node_.stats().add("diff.notifications_sent");
  forward(*msg);
}

void Diffusion::forward(const NotificationMsg& msg) {
  if (!has_gradient()) {
    node_.stats().add("diff.no_gradient_drop");
    node_.tracer().emit({node_.now(), sim::TraceType::kPacketDrop, node_.id(),
                         sink_, msg.uid, 0, 0.0, "no_gradient"});
    return;
  }
  auto body = std::make_shared<NotificationMsg>(msg);
  sim::Packet packet;
  packet.src = msg.origin;
  packet.dst = sink_;
  packet.port = sim::Port::kDiffusion;
  packet.size_bytes = body->wire_size();
  packet.body = std::move(body);
  node_.transport().send(std::move(packet), parent_);
}

}  // namespace icc::sensor
