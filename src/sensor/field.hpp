// Target/sensing physics for the faulty-sensor case study (§5.2).
//
// A target at location u emits energy that decays polynomially with
// distance (Eqn 4); sensor i measures E_i = S_i(u) + N_i^2 with
// N_i ~ N(0, sigma_N), and detects with the Neyman–Pearson rule E_i > lambda
// (lambda = 6.635 keeps the per-sample false-alarm probability at
// alpha = 0.01 for sigma_N = 1, the chi-square_1 0.99 quantile).
//
// The four sensor fault models come verbatim from the paper: stuck-at-zero,
// calibration error (multiplicative), signal interference (amplified noise),
// and positioning error (wrong self-position).
#pragma once

#include <optional>
#include <vector>

#include "fault/sensor_fault.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "sim/vec2.hpp"

namespace icc::sensor {

/// Eqn 4 parameters.
struct SignalModel {
  double kt{20000.0};   ///< K*T, emitted power x sampling duration
  double decay_k{2.0};  ///< polynomial decay exponent
  double d0{1.0};       ///< near-field saturation distance
  double sigma_n{1.0};  ///< measurement noise stddev
  double lambda{6.635}; ///< Neyman-Pearson threshold (alpha = 0.01)

  /// Noise-free signal at distance d from the target (Eqn 4).
  [[nodiscard]] double signal(double d) const {
    if (d < d0) return kt;
    double atten = 1.0;
    // d^k for the (small integer or fractional) decay exponent.
    atten = std::pow(d / d0, decay_k);
    return kt / atten;
  }

  /// Distance implied by a net (noise-corrected) signal estimate — the
  /// inverse of Eqn 4, used for trilateration in §5.2.
  [[nodiscard]] double distance_from_signal(double s) const {
    if (s >= kt) return 0.0;
    return d0 * std::pow(kt / s, 1.0 / decay_k);
  }
};

/// The paper's sensor fault models now live in fault/sensor_fault.hpp as
/// pluggable injectors; these aliases keep the sensor-layer spelling.
using FaultType = fault::SensorFaultType;
using FaultParams = fault::SensorFaultParams;

[[nodiscard]] inline const char* fault_name(FaultType f) {
  return fault::sensor_fault_name(f);
}

/// One target appearance.
struct TargetEvent {
  sim::Time start{0.0};
  sim::Time duration{25.0};
  sim::Vec2 location;
  [[nodiscard]] bool active_at(sim::Time t) const {
    return t >= start && t < start + duration;
  }
};

/// World-level ground truth: the schedule of target appearances ("single
/// target of 25 s duration every 100 s") and the measurement sampler.
class TargetField {
 public:
  TargetField(SignalModel model, std::vector<TargetEvent> events)
      : model_{model}, events_{std::move(events)} {}

  /// Schedule matching the paper: one target per `period`, active for
  /// `duration`, at a uniform random location, for a run of `sim_time`.
  static TargetField periodic(SignalModel model, sim::Time sim_time, sim::Time period,
                              sim::Time duration, double area, sim::Rng& rng,
                              sim::Time first_start = 30.0);

  [[nodiscard]] const SignalModel& model() const noexcept { return model_; }
  [[nodiscard]] const std::vector<TargetEvent>& events() const noexcept { return events_; }

  [[nodiscard]] std::optional<sim::Vec2> active_target(sim::Time t) const;

  /// True (fault-free) measurement of a sensor at `pos`: S + N^2.
  [[nodiscard]] double measure(sim::Vec2 pos, sim::Time t, sim::Rng& rng) const;

  /// Measurement including the sensor's fault, exactly per the paper's four
  /// formulas (stuck: E=0; calibration: E=eps*(S+N^2); interference:
  /// E=S+eps*N^2; position error leaves E untouched).
  [[nodiscard]] double sample(sim::Vec2 pos, sim::Time t, FaultType fault,
                              const FaultParams& params, sim::Rng& rng) const;

 private:
  SignalModel model_;
  std::vector<TargetEvent> events_;
};

}  // namespace icc::sensor
