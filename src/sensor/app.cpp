#include "sensor/app.hpp"

#include "fault/ledger.hpp"
#include "sim/world.hpp"

namespace icc::sensor {

namespace {
constexpr std::uint64_t kSensorRngSalt = 0x5E5E00ull;
}

SensorApp::SensorApp(sim::Node& node, Diffusion& diffusion, const TargetField& field,
                     Params params, core::InnerCircleNode* icc)
    : node_{node},
      diffusion_{diffusion},
      field_{field},
      params_{params},
      icc_{icc},
      rng_{node.fork_rng(kSensorRngSalt + node.id())} {
  reported_pos_ = node_.position();
  if (params_.fault == FaultType::kPositionError) {
    // "a faulty sensor i has an incorrect estimate of its own position:
    //  s_i ~ Uniform(R)"
    const auto& wc = node_.world().config();
    reported_pos_ = rng_.point_in(wc.width, wc.height);
  }
  if (icc_ != nullptr) install_callbacks();
  // Sampling phases are independent across sensors.
  node_.clock().schedule_in(rng_.uniform(0.0, params_.sample_period),
                                    [this] { sample_tick(); }, net::EventTag::kSensor);
}

double SensorApp::measure(sim::Time t) {
  const FaultType fault =
      params_.fault != FaultType::kNone && params_.fault_when.active_at(t)
          ? params_.fault
          : FaultType::kNone;
  // The clean path samples through the same call so the RNG draw count is
  // identical whether or not a fault (or its schedule) is live.
  const double energy = field_.sample(node_.position(), t, fault, params_.fault_params, rng_);
  if (fault != FaultType::kNone) {
    fault::report_injected(node_, fault::FaultClass::kSensor, node_.id());
  }
  return energy;
}

void SensorApp::sample_tick() {
  const sim::Time t = node_.now();
  const double energy = measure(t);
  latest_ = Reading{t, energy, reported_pos_};
  has_reading_ = true;
  node_.stats().add("sensor.samples");

  const bool detected = energy > field_.model().lambda;
  consecutive_ = detected ? consecutive_ + 1 : 0;

  if (icc_ == nullptr) {
    // Centralized: raw data collection — every sample is shipped to the
    // base station, which runs detection centrally ("the base station
    // collects raw target notifications as they are generated", §5.2).
    node_.stats().add("sensor.notifications");
    diffusion_.send_to_sink(latest_.serialize());
  } else if (detected && !suppressed()) {
    // Inner-circle: the first unsuppressed detector of the epoch initiates
    // statistical voting over its own reading.
    node_.stats().add("sensor.rounds_initiated");
    icc_->initiate(latest_.serialize());
  }

  node_.clock().schedule_in(params_.sample_period, [this] { sample_tick(); },
                                    net::EventTag::kSensor);
}

bool SensorApp::suppressed() const {
  return node_.now() - last_agreed_seen_ < params_.suppression_window;
}

void SensorApp::install_callbacks() {
  core::Callbacks& cb = icc_->callbacks();

  // getVal: take a fresh on-demand measurement and contribute it only if it
  // is itself a detection — the circle corroborates detections, it does not
  // manufacture them (this is what drives both false alarms and misses,
  // §5.2). Event-triggered sampling keeps corroboration latency at the
  // voting-round scale instead of the sampling-period scale.
  cb.get_value = [this](sim::NodeId, const core::Value& topic)
      -> std::optional<core::Value> {
    const auto center_reading = Reading::deserialize(topic);
    if (!center_reading) return std::nullopt;
    const sim::Time t = node_.now();
    const double energy = measure(t);
    node_.stats().add("sensor.ondemand_samples");
    if (energy <= field_.model().lambda) return std::nullopt;
    return Reading{t, energy, reported_pos_}.serialize();
  };

  // fuseVal: trilateration + FT-cluster (fusion_rules.hpp).
  cb.fuse = [this](const std::vector<std::pair<sim::NodeId, core::Value>>& values)
      -> core::Value {
    std::vector<std::pair<sim::NodeId, Reading>> readings;
    readings.reserve(values.size());
    for (const auto& [id, bytes] : values) {
      if (const auto r = Reading::deserialize(bytes)) readings.emplace_back(id, *r);
    }
    // Readings the FT-cluster refinement rejects are *detected* sensor
    // faults, attributed to the contributing sensor. Validators recompute
    // the fusion, so a rejection can be reported by several circle members;
    // the ledger's capped rows absorb that multiplicity.
    std::vector<sim::NodeId> rejected;
    const FusedNotification fused =
        fuse_readings(field_.model(), readings, params_.fusion, &rejected);
    for (const sim::NodeId id : rejected) {
      node_.stats().add("sensor.readings_rejected");
      fault::report_detected(node_, fault::FaultClass::kSensor, id);
    }
    last_fused_dropped_ = std::move(rejected);
    return fused.serialize();
  };

  // check: the fused notification must describe a physically consistent
  // detection.
  cb.check = [](sim::NodeId, const core::Value& fused_bytes) {
    const auto fused = FusedNotification::deserialize(fused_bytes);
    return fused.has_value() && fused->valid;
  };

  // onAgr: the center forwards the self-checking agreed message to the base
  // station; every circle member (center included) mutes its own redundant
  // reporting for the epoch.
  cb.on_agreed = [this](const core::AgreedMsg& msg, bool is_center) {
    last_agreed_seen_ = node_.now();
    if (is_center) {
      // The agreed notification excludes the readings our fusion rejected:
      // those faults were masked, which is the neutralization the ledger
      // tracks. Only the center reports (its fusion is the accepted one).
      for (const sim::NodeId id : last_fused_dropped_) {
        fault::report_neutralized(node_, fault::FaultClass::kSensor, id);
      }
      last_fused_dropped_.clear();
      node_.stats().add("sensor.notifications");
      diffusion_.send_to_sink(msg.serialize());
    }
  };
}

}  // namespace icc::sensor
