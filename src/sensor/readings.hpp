// Wire formats for sensor target notifications: the raw per-sensor reading
// <t_i, E_i, u_i> (§5.2) and the fused notification produced by inner-circle
// statistical voting.
#pragma once

#include <optional>

#include "core/wire.hpp"
#include "sim/types.hpp"
#include "sim/vec2.hpp"

namespace icc::sensor {

/// A single sensor's target notification <t_i, E_i, u_i>.
struct Reading {
  sim::Time t{0.0};     ///< detection time
  double energy{0.0};   ///< sensed energy E_i
  sim::Vec2 pos;        ///< the sensor's position estimate u_i (= s_i)

  [[nodiscard]] std::vector<std::uint8_t> serialize() const {
    core::WireWriter w;
    w.f64(t);
    w.f64(energy);
    w.f64(pos.x);
    w.f64(pos.y);
    return std::move(w).take();
  }

  [[nodiscard]] static std::optional<Reading> deserialize(
      std::span<const std::uint8_t> bytes) {
    core::WireReader r{bytes};
    const auto t = r.f64();
    const auto e = r.f64();
    const auto x = r.f64();
    const auto y = r.f64();
    if (!t || !e || !x || !y || !r.done()) return std::nullopt;
    return Reading{*t, *e, {*x, *y}};
  }

  static constexpr std::uint32_t kWireSize = 32;
};

/// The inner-circle fused notification: detection time, estimated target
/// position (trilateration + FT-cluster), estimated source power, and the
/// number of corroborating detectors.
struct FusedNotification {
  sim::Time t{0.0};
  sim::Vec2 target_pos;
  double est_power{0.0};
  std::uint32_t detectors{0};
  bool valid{false};  ///< the fusion produced a consistent estimate

  [[nodiscard]] std::vector<std::uint8_t> serialize() const {
    core::WireWriter w;
    w.f64(t);
    w.f64(target_pos.x);
    w.f64(target_pos.y);
    w.f64(est_power);
    w.u32(detectors);
    w.u8(valid ? 1 : 0);
    return std::move(w).take();
  }

  [[nodiscard]] static std::optional<FusedNotification> deserialize(
      std::span<const std::uint8_t> bytes) {
    core::WireReader r{bytes};
    const auto t = r.f64();
    const auto x = r.f64();
    const auto y = r.f64();
    const auto p = r.f64();
    const auto n = r.u32();
    const auto v = r.u8();
    if (!t || !x || !y || !p || !n || !v || !r.done()) return std::nullopt;
    FusedNotification out;
    out.t = *t;
    out.target_pos = {*x, *y};
    out.est_power = *p;
    out.detectors = *n;
    out.valid = *v != 0;
    return out;
  }
};

}  // namespace icc::sensor
