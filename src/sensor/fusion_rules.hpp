// The sensor study's statistical-voting fusion (§5.2): from the circle's
// readings, estimate the target position by trilaterating every triple of
// (sensor position, energy-implied distance) pairs and filtering the
// estimates with the fault-tolerant cluster algorithm (§4.3); then estimate
// the source power by back-projecting each reading to the fused position
// and FT-clustering the per-sensor power estimates.
//
// The function is deterministic in its inputs — inner-circle participants
// recompute it byte-for-byte to validate the center's proposal (Fig 3b).
#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "fusion/ft_cluster.hpp"
#include "fusion/ft_mean.hpp"
#include "fusion/trilateration.hpp"
#include "sensor/field.hpp"
#include "sensor/readings.hpp"
#include "sim/types.hpp"

namespace icc::sensor {

/// Which robust estimator filters the trilateration estimates — FT-cluster
/// is the paper's contribution; FT-mean [18,19] and the plain mean are the
/// baselines the ablation bench compares it against.
enum class FusionAlgo : std::uint8_t { kFtCluster = 0, kFtMean, kPlainMean };

struct FusionParams {
  FusionAlgo algo{FusionAlgo::kFtCluster};
  double eta_pos{5.0};        ///< FT-cluster threshold on positions [m] (paper: 5)
  double eta_power_frac{0.5}; ///< FT-cluster threshold on power, fraction of K*T
  /// Per-reading plausibility band (application-aware check): every
  /// surviving reading's back-projected source power K_i must fall within
  /// [lo, hi] * K*T for the fused estimate to be physically consistent.
  double power_band_lo{0.5};
  double power_band_hi{2.0};
  std::size_t min_consistent{3};  ///< surviving readings needed for validity
};

/// Fuse the circle's readings into a notification. `readings` must be sorted
/// by sender id (the voting service guarantees it). When `dropped_ids` is
/// non-null, the ids of readings the FT-cluster refinement rejected as
/// inconsistent are appended to it — that set is the fusion's *detection*
/// of faulty sensors, reported to the coverage ledger by the caller. The
/// out-parameter never influences the returned notification, so validator
/// recomputation stays byte-for-byte identical with or without it.
inline FusedNotification fuse_readings(
    const SignalModel& model,
    const std::vector<std::pair<sim::NodeId, Reading>>& readings,
    const FusionParams& params = {},
    std::vector<sim::NodeId>* dropped_ids = nullptr) {
  FusedNotification out;
  if (readings.empty()) return out;

  // Detection time: FT-cluster over the individual detection times.
  std::vector<double> times;
  std::vector<double> net_signals;
  std::vector<fusion::RangeObservation> ranges;
  std::vector<sim::NodeId> ids;
  for (const auto& [id, r] : readings) {
    if (r.energy <= model.lambda) continue;  // non-detections carry no range info
    times.push_back(r.t);
    // Net signal after stripping the expected noise floor E[N^2] = sigma^2.
    const double s = std::max(r.energy - model.sigma_n * model.sigma_n, 1e-3);
    net_signals.push_back(s);
    ranges.push_back(fusion::RangeObservation{r.pos, model.distance_from_signal(s)});
    ids.push_back(id);
  }
  out.detectors = static_cast<std::uint32_t>(ranges.size());
  if (ranges.size() < 3) return out;

  out.t = fusion::ft_cluster(times, /*eta=*/5.0).estimate;

  if (params.algo != FusionAlgo::kFtCluster) {
    // Baseline estimators (ablation): fuse the trilateration estimates with
    // FT-mean or the plain mean; no reading-level refinement is possible.
    const std::vector<sim::Vec2> estimates = fusion::trilaterate_all_triples(ranges);
    if (estimates.empty()) return out;
    if (params.algo == FusionAlgo::kFtMean && estimates.size() > 2) {
      const std::size_t f = std::min(estimates.size() / 3, (estimates.size() - 1) / 2);
      out.target_pos = fusion::ft_mean(estimates, f);
    } else {
      out.target_pos = fusion::centroid(std::span{estimates});
    }
    std::vector<double> powers;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      const double d = std::max(sim::distance(ranges[i].anchor, out.target_pos), model.d0);
      powers.push_back(net_signals[i] * std::pow(d / model.d0, model.decay_k));
    }
    out.est_power = fusion::centroid(std::span{powers});
    out.valid = out.est_power >= params.power_band_lo * model.kt &&
                out.est_power <= params.power_band_hi * model.kt;
    return out;
  }

  // Two refinement passes: (1) trilaterate all triples and FT-cluster the
  // "3L estimates p_i"; (2) back-project each reading to the fused position
  // to get per-sensor source-power estimates K_i = S_i * (d_i/d0)^k,
  // FT-cluster them, drop the readings whose power is inconsistent with the
  // rest (corrupted energies shift *every* triple they touch in the same
  // direction, so they must be removed at the reading level, not the
  // estimate level), and redo the trilateration with the survivors.
  std::vector<fusion::RangeObservation> current = ranges;
  std::vector<double> current_signals = net_signals;
  std::vector<sim::NodeId> current_ids = ids;
  std::size_t dropped = 0;
  for (int pass = 0; pass < 2; ++pass) {
    if (current.size() < 3) break;
    const std::vector<sim::Vec2> estimates = fusion::trilaterate_all_triples(current);
    if (estimates.empty()) break;
    out.target_pos = fusion::ft_cluster(estimates, params.eta_pos).estimate;

    std::vector<double> powers;
    for (std::size_t i = 0; i < current.size(); ++i) {
      const double d = std::max(sim::distance(current[i].anchor, out.target_pos), model.d0);
      powers.push_back(current_signals[i] * std::pow(d / model.d0, model.decay_k));
    }
    const auto power_cluster = fusion::ft_cluster(powers, params.eta_power_frac * model.kt);
    out.est_power = power_cluster.estimate;
    if (power_cluster.excluded.empty()) break;  // already consistent

    // Remove the inconsistent readings (descending index order keeps the
    // remaining indices valid).
    std::vector<std::size_t> excluded = power_cluster.excluded;
    std::sort(excluded.begin(), excluded.end(), std::greater<>{});
    for (const std::size_t idx : excluded) {
      if (dropped_ids != nullptr) dropped_ids->push_back(current_ids[idx]);
      current.erase(current.begin() + static_cast<std::ptrdiff_t>(idx));
      current_signals.erase(current_signals.begin() + static_cast<std::ptrdiff_t>(idx));
      current_ids.erase(current_ids.begin() + static_cast<std::ptrdiff_t>(idx));
      ++dropped;
    }
  }
  if (out.est_power == 0.0) return out;

  // Fault-tolerance budget (§4.2/§4.3): a consistent fusion may discard at
  // most F < N/3 readings. Spurious detection sets only become "consistent"
  // by discarding their way down to the minimum, which this bound rejects.
  if (dropped > std::max<std::size_t>(1, ranges.size() / 3)) return out;

  // Application-aware plausibility: each surviving reading, back-projected
  // to the fused position, must describe the *same* physically plausible
  // source. (Checking the readings individually — not just the clustered
  // centroid — is what gives the test power for the minimum 3-reading case,
  // where the exact trilateration solve would otherwise make the centroid
  // tautologically consistent.)
  if (current.size() < params.min_consistent) return out;
  bool all_consistent = true;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const double d = std::max(sim::distance(current[i].anchor, out.target_pos), model.d0);
    const double k_i = current_signals[i] * std::pow(d / model.d0, model.decay_k);
    if (k_i < params.power_band_lo * model.kt || k_i > params.power_band_hi * model.kt) {
      all_consistent = false;
      break;
    }
  }
  out.valid = all_consistent;
  return out;
}

}  // namespace icc::sensor
