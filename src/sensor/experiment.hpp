// End-to-end faulty-sensor experiment (Fig 8): 100 static sensors in
// 200x200 m^2 plus a base station, a periodic target, 10 faulty sensors
// under one of the paper's fault models, run either centralized ("No IC")
// or with inner-circle statistical voting at dependability level L.
#pragma once

#include <array>
#include <cstdint>

#include "core/callbacks.hpp"
#include "fault/ledger.hpp"
#include "fault/plan.hpp"
#include "sensor/field.hpp"
#include "sensor/fusion_rules.hpp"
#include "sim/metrics.hpp"

namespace icc::sensor {

struct SensorExperimentConfig {
  // Fig 8 simulation parameters.
  int num_sensors{100};
  double area{200.0};
  double tx_range{40.0};
  SignalModel signal{};             ///< K*T = 20000, k = 2, lambda = 6.635
  sim::Time sample_period{5.0};
  sim::Time sim_time{200.0};
  sim::Time target_period{100.0};
  sim::Time target_duration{25.0};
  bool with_target{true};           ///< false reproduces Fig 8(d)

  int num_faulty{10};
  FaultType fault{FaultType::kNone};
  FaultParams fault_params{};

  /// The declarative adversary. Sensor specs name the faulty sensors
  /// explicitly (overriding the uniform num_faulty draw when non-empty;
  /// note node 0 is the base station, sensors are 1..num_sensors); channel
  /// and node specs are applied by a fault::InjectionEngine over the world.
  fault::FaultPlan plan;

  // Inner-circle configuration.
  bool inner_circle{false};
  int level{2};                     ///< L in 2..7 (Fig 8)
  sim::Time delta_sts{100.0};
  int key_bits{512};
  FusionParams fusion{};            ///< eta = 5 (paper)
  core::CryptoCostModel cost{};

  int debounce{2};                  ///< centralized per-sensor debounce
  std::uint64_t seed{1};
};

struct SensorExperimentResult {
  double miss_prob{0.0};            ///< Fig 8(a): fraction of targets never reported
  double false_alarm_prob{0.0};     ///< Fig 8(b): P(spurious report) per quiet epoch
  double active_energy_mj{0.0};     ///< Fig 8(c)/(d): mean per-sensor radio+crypto mJ
  double total_energy_j{0.0};       ///< including idle draw
  double detection_latency_s{0.0};  ///< Fig 8(e): target start -> first report
  double localization_error_m{0.0}; ///< Fig 8(f): |true - first reported position|
  std::uint64_t notifications{0};
  std::uint64_t bs_detections{0};
  std::uint64_t bs_rejected{0};
  std::uint64_t targets{0};
  std::uint64_t targets_detected{0};

  /// Neutralization-coverage ledger rows (index = fault::FaultClass) and
  /// the ledger's accounting-invariant verdict, from the (last) run.
  std::array<fault::CoverageRow, fault::kNumFaultClasses> coverage{};
  bool coverage_consistent{true};

  // Cross-run distributions, filled by run_sensor_experiment_averaged: one
  // sample per run, so mean/stddev quantify run-to-run variability.
  sim::SampleSeries miss_prob_runs;
  sim::SampleSeries false_alarm_runs;
  sim::SampleSeries active_energy_runs;
  sim::SampleSeries latency_runs;
};

SensorExperimentResult run_sensor_experiment(const SensorExperimentConfig& config);

/// Average over `runs` seeded instances.
SensorExperimentResult run_sensor_experiment_averaged(SensorExperimentConfig config, int runs);

}  // namespace icc::sensor
