#include "sensor/base_station.hpp"

#include "core/messages.hpp"
#include "sim/trace.hpp"

namespace icc::sensor {

BaseStation::BaseStation(net::Host& node, Diffusion& diffusion,
                         const crypto::ThresholdScheme* scheme, CentralizedRule rule)
    : node_{node}, scheme_{scheme}, rule_{rule} {
  diffusion.set_sink_handler([this](const NotificationMsg& msg, sim::NodeId) {
    handle_notification(msg);
  });
}

void BaseStation::handle_notification(const NotificationMsg& msg) {
  const sim::Time now = node_.now();
  if (scheme_ == nullptr) {
    // Centralized: a raw sample from one sensor's stream. Run the detection
    // rule here — declare when `debounce` consecutive samples from the same
    // sensor clear the threshold.
    const auto reading = Reading::deserialize(msg.data);
    if (!reading) {
      ++rejected_;
      return;
    }
    ++readings_;
    SensorStream& stream = streams_[msg.origin];
    if (reading->energy > rule_.lambda) {
      const bool consecutive_epoch =
          reading->t - stream.last_t < 1.6 * rule_.sample_period;
      stream.consecutive = consecutive_epoch ? stream.consecutive + 1 : 1;
      stream.last_t = reading->t;
      if (stream.consecutive >= rule_.debounce) {
        detections_.push_back(Detection{now, reading->t, reading->pos, 1, msg.origin});
      }
    } else {
      stream.consecutive = 0;
      stream.last_t = reading->t;
    }
    return;
  }

  // Inner-circle: unwrap and verify the agreed message before trusting it.
  const auto agreed = core::AgreedMsg::deserialize(msg.data);
  if (!agreed) {
    ++rejected_;
    return;
  }
  const auto signed_bytes = core::AgreedMsg::signed_bytes(agreed->source, agreed->round,
                                                          agreed->level, agreed->value);
  if (agreed->sig.level != agreed->level || !scheme_->verify(signed_bytes, agreed->sig)) {
    ++rejected_;
    node_.stats().add("bs.agreed_rejected");
    node_.tracer().emit({now, sim::TraceType::kFusionDecision, node_.id(),
                         agreed->source, agreed->round, 0, 0.0, "rejected_signature"});
    return;
  }
  const auto fused = FusedNotification::deserialize(agreed->value);
  if (!fused || !fused->valid) {
    ++rejected_;
    node_.tracer().emit({now, sim::TraceType::kFusionDecision, node_.id(),
                         agreed->source, agreed->round, 0, 0.0, "rejected_payload"});
    return;
  }
  node_.tracer().emit({now, sim::TraceType::kFusionDecision, node_.id(),
                       agreed->source, agreed->round, 0,
                       static_cast<double>(fused->detectors), "accepted"});
  detections_.push_back(
      Detection{now, fused->t, fused->target_pos, fused->detectors, agreed->source});
}

}  // namespace icc::sensor
