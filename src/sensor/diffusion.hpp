// Directed-diffusion-style sink routing [14] (simplified; DESIGN.md §3).
//
// The base station periodically floods an interest; each node keeps a
// gradient towards the neighbor it first heard the lowest-hop interest from.
// Data notifications climb the gradient tree hop by hop to the sink. This
// reproduces the role diffusion plays in the paper's sensor study —
// multi-hop transport of target notifications to the base station — at the
// same hop-count and energy behaviour for a static field.
#pragma once

#include <functional>
#include <vector>

#include "net/host.hpp"
#include "sim/packet.hpp"
#include "sim/rng.hpp"

namespace icc::sensor {

/// Interest flood establishing the gradient.
struct InterestMsg final : sim::PayloadBase<InterestMsg> {
  static constexpr const char* kTag = "diff.interest";
  sim::NodeId sink{sim::kNoNode};
  std::uint32_t seq{0};
  std::uint32_t hops{0};
  static constexpr std::uint32_t kWireSize = 16;
};

/// A notification travelling up the tree. The payload is opaque bytes —
/// a raw Reading (centralized mode) or a serialized AgreedMsg (inner-circle
/// mode).
struct NotificationMsg final : sim::PayloadBase<NotificationMsg> {
  static constexpr const char* kTag = "diff.notification";
  sim::NodeId origin{sim::kNoNode};
  std::uint64_t uid{0};
  std::vector<std::uint8_t> data;
  [[nodiscard]] std::uint32_t wire_size() const {
    return static_cast<std::uint32_t>(16 + data.size());
  }
};

/// Per-node diffusion agent. The node designated `sink` floods interests;
/// everyone else forwards notifications along its gradient.
// icc:affinity(node)
class Diffusion {
 public:
  struct Params {
    sim::Time interest_period{50.0};
    sim::Time first_interest{0.5};
    sim::Time gradient_lifetime{120.0};
  };

  /// Sink-side handler for arrived notifications.
  using SinkHandler = std::function<void(const NotificationMsg&, sim::NodeId from)>;

  Diffusion(net::Host& node, sim::NodeId sink, Params params);

  /// Send opaque `data` towards the sink.
  void send_to_sink(std::vector<std::uint8_t> data);

  void set_sink_handler(SinkHandler h) { sink_handler_ = std::move(h); }

  [[nodiscard]] bool has_gradient() const;
  [[nodiscard]] sim::NodeId parent() const noexcept { return parent_; }

 private:
  void flood_interest();
  void handle_packet(const sim::Packet& packet, sim::NodeId from);
  void forward(const NotificationMsg& msg);

  net::Host& node_;
  sim::NodeId sink_;
  Params params_;
  sim::Rng rng_;
  SinkHandler sink_handler_;

  std::uint32_t interest_seq_{0};       ///< sink: next seq to flood
  std::uint32_t best_seq_{0};           ///< non-sink: freshest seq seen
  std::uint32_t best_hops_{0xFFFFFFFF};
  sim::NodeId parent_{sim::kNoNode};
  sim::Time gradient_time_{-1e18};
  std::uint64_t next_uid_{1};
};

}  // namespace icc::sensor
