#include "fusion/ft_mean.hpp"

namespace icc::fusion {

double ft_mean(std::vector<double> points, std::size_t f) {
  if (points.size() <= 2 * f) {
    throw std::invalid_argument("ft_mean: need more than 2F observations");
  }
  std::sort(points.begin(), points.end());
  double sum = 0.0;
  const std::size_t n = points.size() - f;
  for (std::size_t i = f; i < n; ++i) sum += points[i];
  return sum / static_cast<double>(n - f);
}

Vec2 ft_mean(const std::vector<Vec2>& points, std::size_t f) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const Vec2& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  return Vec2{ft_mean(std::move(xs), f), ft_mean(std::move(ys), f)};
}

}  // namespace icc::fusion
