// Trilateration: recover a target position from three (anchor, distance)
// pairs. The sensor case study (§5.2) computes per-sensor target distances
// from the energy-decay law, trilaterates every triple, and filters the
// resulting position estimates with the FT-cluster algorithm.
#pragma once

#include <optional>
#include <vector>

#include "fusion/point.hpp"

namespace icc::fusion {

/// One range observation: an anchor position and its estimated distance to
/// the unknown target.
struct RangeObservation {
  Vec2 anchor;
  double dist{0.0};
};

/// Solve the linearized three-circle intersection. Returns nullopt when the
/// anchor triangle's area is below `min_area` (near-collinear anchors make
/// the system ill-conditioned and the linearized solution extrapolates
/// wildly under measurement noise).
std::optional<Vec2> trilaterate(const RangeObservation& a, const RangeObservation& b,
                                const RangeObservation& c, double min_area = 25.0);

/// Trilaterate every distinct triple out of `obs` (up to `max_triples`, to
/// bound the O(n^3) blow-up) and return all solvable position estimates —
/// the "3L estimates" fed to FT-cluster in §5.2.
std::vector<Vec2> trilaterate_all_triples(const std::vector<RangeObservation>& obs,
                                          std::size_t max_triples = 64,
                                          double min_area = 25.0);

}  // namespace icc::fusion
