// Point abstractions for fault-tolerant fusion: the algorithms of §4.3 work
// on any type with vector-space operations and a norm — scalars (energy
// readings) and 2-D positions are the two instantiations the paper uses.
#pragma once

#include <cmath>
#include <span>

#include "sim/vec2.hpp"

namespace icc::fusion {

using sim::Vec2;

inline double centroid(std::span<const double> pts) {
  double sum = 0.0;
  for (double p : pts) sum += p;
  return pts.empty() ? 0.0 : sum / static_cast<double>(pts.size());
}

inline Vec2 centroid(std::span<const Vec2> pts) {
  Vec2 sum;
  for (const Vec2& p : pts) sum += p;
  return pts.empty() ? Vec2{} : sum / static_cast<double>(pts.size());
}

inline double point_distance(double a, double b) { return std::abs(a - b); }
inline double point_distance(Vec2 a, Vec2 b) { return sim::distance(a, b); }

/// Concept satisfied by the fusion point types.
template <typename P>
concept FusionPoint = requires(P a, P b, std::span<const P> s) {
  { centroid(s) } -> std::convertible_to<P>;
  { point_distance(a, b) } -> std::convertible_to<double>;
};

}  // namespace icc::fusion
