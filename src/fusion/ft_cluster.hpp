// The paper's Fault-Tolerant Cluster algorithm (§4.3, Fig 4).
//
// Given L observations p_i = Theta + N_i, up to F of which may be
// arbitrarily corrupted, iteratively discard the observation farthest from
// the centroid of the others whenever that distance exceeds threshold eta;
// the estimate is the centroid of the surviving cluster. Unlike
// approximate-agreement style fusion (ft_mean.hpp) nothing is discarded when
// all observations are consistent, so accuracy is not sacrificed in the
// fault-free common case — the property the paper's inner-circle fusion
// relies on for small circles (10–15 members).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "fusion/point.hpp"

namespace icc::fusion {

template <FusionPoint P>
struct FtClusterResult {
  P estimate{};                        ///< centroid of the fault-tolerant cluster
  std::vector<P> cluster;              ///< surviving observations
  std::vector<std::size_t> excluded;   ///< original indices of discarded points
};

/// Parameter eta: two correct observations should exceed distance eta only
/// with negligible probability (the paper sets eta from the noise stddev).
template <FusionPoint P>
FtClusterResult<P> ft_cluster(const std::vector<P>& points, double eta) {
  FtClusterResult<P> result;
  std::vector<P> cluster = points;
  std::vector<std::size_t> index(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) index[i] = i;

  bool change = cluster.size() > 2;
  while (change) {
    change = false;
    // d_i = || p_i - centroid(C \ p_i) || for every point in the cluster.
    double worst_d = -1.0;
    std::size_t worst_i = 0;
    std::vector<P> without;
    without.reserve(cluster.size() - 1);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      without.clear();
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        if (j != i) without.push_back(cluster[j]);
      }
      const double d = point_distance(cluster[i], centroid(without));
      if (d > worst_d) {
        worst_d = d;
        worst_i = i;
      }
    }
    if (worst_d > eta) {
      result.excluded.push_back(index[worst_i]);
      cluster.erase(cluster.begin() + static_cast<std::ptrdiff_t>(worst_i));
      index.erase(index.begin() + static_cast<std::ptrdiff_t>(worst_i));
      change = cluster.size() > 2;
    }
  }

  result.estimate = centroid(cluster);
  result.cluster = std::move(cluster);
  return result;
}

/// Worst-case extra estimation error when F of N observations collude at the
/// adversarially optimal offset (paper §4.3): E* = (F/N) * deltaF*, with
/// deltaF* = deltaC / (1 - 2F/N). Returns +inf when F >= N/2.
inline double ft_cluster_worst_case_error(std::size_t n, std::size_t f, double delta_c) {
  const double ratio = static_cast<double>(f) / static_cast<double>(n);
  if (ratio >= 0.5) return std::numeric_limits<double>::infinity();
  const double delta_f_star = delta_c / (1.0 - 2.0 * ratio);
  return ratio * delta_f_star;
}

}  // namespace icc::fusion
