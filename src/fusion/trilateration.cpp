#include "fusion/trilateration.hpp"

#include <cmath>

namespace icc::fusion {

std::optional<Vec2> trilaterate(const RangeObservation& a, const RangeObservation& b,
                                const RangeObservation& c, double min_area) {
  // Geometric quality gate: area of the anchor triangle via cross product.
  const Vec2 ab = b.anchor - a.anchor;
  const Vec2 ac = c.anchor - a.anchor;
  const double area = 0.5 * std::abs(ab.x * ac.y - ab.y * ac.x);
  if (area < min_area) return std::nullopt;

  // Subtracting circle equations pairwise yields a linear system:
  //   2(x_b - x_a) x + 2(y_b - y_a) y = (d_a^2 - d_b^2) + (x_b^2+y_b^2) - (x_a^2+y_a^2)
  const double a1 = 2.0 * (b.anchor.x - a.anchor.x);
  const double b1 = 2.0 * (b.anchor.y - a.anchor.y);
  const double c1 = a.dist * a.dist - b.dist * b.dist + b.anchor.norm2() - a.anchor.norm2();
  const double a2 = 2.0 * (c.anchor.x - b.anchor.x);
  const double b2 = 2.0 * (c.anchor.y - b.anchor.y);
  const double c2 = b.dist * b.dist - c.dist * c.dist + c.anchor.norm2() - b.anchor.norm2();

  const double det = a1 * b2 - a2 * b1;
  // Scale-aware singularity test: collinear anchors give det ~ 0.
  const double scale = std::abs(a1) + std::abs(b1) + std::abs(a2) + std::abs(b2);
  if (std::abs(det) < 1e-9 * scale * scale + 1e-12) return std::nullopt;

  return Vec2{(c1 * b2 - c2 * b1) / det, (a1 * c2 - a2 * c1) / det};
}

std::vector<Vec2> trilaterate_all_triples(const std::vector<RangeObservation>& obs,
                                          std::size_t max_triples, double min_area) {
  std::vector<Vec2> out;
  const std::size_t n = obs.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t k = j + 1; k < n; ++k) {
        if (out.size() >= max_triples) return out;
        if (const auto p = trilaterate(obs[i], obs[j], obs[k], min_area)) out.push_back(*p);
      }
    }
  }
  return out;
}

}  // namespace icc::fusion
