// Fault-tolerant mean, the approximate-agreement baseline [18, 19] the paper
// compares its FT-cluster algorithm against: always discard the F smallest
// and F largest observations and average the rest. Robust, but it throws
// away 2F good observations even when nothing is faulty — the accuracy
// limitation §4.3 motivates FT-cluster with.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fusion/point.hpp"

namespace icc::fusion {

/// Scalar fault-tolerant mean: drop the F extremes on each side.
/// Requires points.size() > 2*F.
double ft_mean(std::vector<double> points, std::size_t f);

/// Component-wise extension for 2-D observations (as used for position
/// fusion by the collaborative target-detection baseline [19]).
Vec2 ft_mean(const std::vector<Vec2>& points, std::size_t f);

}  // namespace icc::fusion
