#include "traffic/cbr.hpp"

namespace icc::traffic {

CbrConnection::CbrConnection(aodv::Aodv& source, sim::NodeId dest, Params params)
    : source_{source},
      dest_{dest},
      params_{params},
      m_sent_{source.node().metrics().counter_id("cbr.sent")} {
  source_.node().clock().schedule_at(params_.start, [this] { send_next(); },
                                     net::EventTag::kTraffic);
}

void CbrConnection::send_next() {
  net::Host& host = source_.node();
  if (host.now() >= params_.stop) return;

  aodv::DataMsg data;
  data.app_uid = host.next_packet_uid();
  data.app_bytes = params_.packet_bytes;
  data.sent_at = host.now();
  ++sent_;
  host.metrics().add(m_sent_);
  source_.send_data(dest_, data);

  host.clock().schedule_in(1.0 / params_.rate_pps, [this] { send_next(); },
                           net::EventTag::kTraffic);
}

void CbrConnection::attach_sink(aodv::Aodv& aodv) {
  net::Host& host = aodv.node();
  const sim::MetricId received = host.metrics().counter_id("cbr.received");
  const sim::MetricId latency = host.metrics().series_id("cbr.latency");
  aodv.set_deliver_handler([&host, received, latency](const aodv::DataMsg& data, sim::NodeId) {
    host.metrics().add(received);
    host.metrics().sample(latency, host.now() - data.sent_at);
  });
}

}  // namespace icc::traffic
