#include "traffic/cbr.hpp"

#include "sim/world.hpp"

namespace icc::traffic {

CbrConnection::CbrConnection(aodv::Aodv& source, sim::NodeId dest, Params params)
    : source_{source},
      dest_{dest},
      params_{params},
      m_sent_{source.node().world().metrics().counter_id("cbr.sent")} {
  source_.node().world().sched().schedule_at(params_.start, [this] { send_next(); },
                                             sim::EventTag::kTraffic);
}

void CbrConnection::send_next() {
  sim::World& world = source_.node().world();
  if (world.now() >= params_.stop) return;

  aodv::DataMsg data;
  data.app_uid = world.next_packet_uid();
  data.app_bytes = params_.packet_bytes;
  data.sent_at = world.now();
  ++sent_;
  world.metrics().add(m_sent_);
  source_.send_data(dest_, data);

  world.sched().schedule_in(1.0 / params_.rate_pps, [this] { send_next(); },
                            sim::EventTag::kTraffic);
}

void CbrConnection::attach_sink(aodv::Aodv& aodv) {
  sim::World& world = aodv.node().world();
  const sim::MetricId received = world.metrics().counter_id("cbr.received");
  const sim::MetricId latency = world.metrics().series_id("cbr.latency");
  aodv.set_deliver_handler([&world, received, latency](const aodv::DataMsg& data, sim::NodeId) {
    world.metrics().add(received);
    world.metrics().sample(latency, world.now() - data.sent_at);
  });
}

}  // namespace icc::traffic
