#include "traffic/cbr.hpp"

#include "sim/world.hpp"

namespace icc::traffic {

CbrConnection::CbrConnection(aodv::Aodv& source, sim::NodeId dest, Params params)
    : source_{source}, dest_{dest}, params_{params} {
  source_.node().world().sched().schedule_at(params_.start, [this] { send_next(); });
}

void CbrConnection::send_next() {
  sim::World& world = source_.node().world();
  if (world.now() >= params_.stop) return;

  aodv::DataMsg data;
  data.app_uid = world.next_packet_uid();
  data.app_bytes = params_.packet_bytes;
  data.sent_at = world.now();
  ++sent_;
  world.stats().add("cbr.sent");
  source_.send_data(dest_, data);

  world.sched().schedule_in(1.0 / params_.rate_pps, [this] { send_next(); });
}

void CbrConnection::attach_sink(aodv::Aodv& aodv) {
  sim::World& world = aodv.node().world();
  aodv.set_deliver_handler([&world](const aodv::DataMsg& data, sim::NodeId) {
    world.stats().add("cbr.received");
    world.stats().sample("cbr.latency", world.now() - data.sent_at);
  });
}

}  // namespace icc::traffic
