// Constant-bit-rate UDP-style traffic over AODV routes: the workload of the
// paper's black hole study (10 connections, 4 packets/s, 512 bytes).
#pragma once

#include <cstdint>

#include "aodv/aodv.hpp"

namespace icc::traffic {

/// One unidirectional CBR flow. Counts sent packets; the sink side counts
/// deliveries and samples end-to-end latency into the world stats
/// ("cbr.sent", "cbr.received", "cbr.latency").
// icc:affinity(node)
class CbrConnection {
 public:
  struct Params {
    double rate_pps{4.0};
    std::uint32_t packet_bytes{512};
    sim::Time start{0.0};
    sim::Time stop{1e18};
  };

  CbrConnection(aodv::Aodv& source, sim::NodeId dest, Params params);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] sim::NodeId source() const { return source_.node().id(); }
  [[nodiscard]] sim::NodeId dest() const noexcept { return dest_; }

  /// Install the delivery-side accounting on a node's AODV agent. Call once
  /// per node that terminates at least one connection.
  static void attach_sink(aodv::Aodv& aodv);

 private:
  void send_next();

  aodv::Aodv& source_;
  sim::NodeId dest_;
  Params params_;
  std::uint64_t sent_{0};
  sim::MetricId m_sent_;
};

}  // namespace icc::traffic
