#include "core/voting.hpp"

#include <algorithm>

#include "sim/check.hpp"
#include "sim/trace.hpp"

namespace icc::core {

namespace {

// The SuspicionsManager is world-agnostic, so the trace record of a
// suspicion/conviction is emitted here at the decision site. Each gets its
// own span; the parent is the packet being processed (the lineage scope the
// inbound handler established), i.e. the evidence.
void trace_suspicion(net::Services& services, sim::NodeId accuser, sim::NodeId suspect,
                     sim::TraceType type, const char* reason) {
  services.tracer().emit({services.now(), type, accuser, suspect, 0, 0, 0.0, reason,
                          services.next_span(), services.lineage_parent()});
}

}  // namespace

IvsService::IvsService(net::Host& node, Params params, SecureTopologyService& sts,
                       SuspicionsManager& suspicions, crypto::ThresholdScheme& scheme,
                       std::unique_ptr<crypto::ThresholdSigner> signer, crypto::Pki& pki,
                       std::unique_ptr<crypto::NodeSigner> node_signer, Callbacks& callbacks)
    : node_{node},
      params_{params},
      sts_{sts},
      suspicions_{suspicions},
      scheme_{scheme},
      signer_{std::move(signer)},
      pki_{pki},
      node_signer_{std::move(node_signer)},
      callbacks_{callbacks} {}

sim::Time IvsService::now() const { return node_.now(); }

void IvsService::charge_crypto(sim::Time) {
  node_.energy().charge_extra(params_.cost.energy_per_op_j);
  node_.tracer().emit({now(), sim::TraceType::kEnergyCharge, node_.id(), sim::kNoNode,
                               0, 0, params_.cost.energy_per_op_j, "crypto"});
}

void IvsService::broadcast(std::shared_ptr<const sim::Payload> body, std::uint32_t size) {
  sim::Packet packet;
  packet.src = node_.id();
  packet.dst = sim::kBroadcast;
  packet.port = sim::Port::kIvs;
  packet.size_bytes = size;
  packet.body = std::move(body);
  node_.transport().send_unfiltered(std::move(packet), sim::kBroadcast);
}

void IvsService::unicast(sim::NodeId to, std::shared_ptr<const sim::Payload> body,
                         std::uint32_t size) {
  sim::Packet packet;
  packet.src = node_.id();
  packet.dst = to;
  packet.port = sim::Port::kIvs;
  packet.size_bytes = size;
  packet.body = std::move(body);
  node_.transport().send_unfiltered(std::move(packet), to);
}

Value IvsService::fuse_sorted(std::vector<ValueMsg> evidence) const {
  std::sort(evidence.begin(), evidence.end(),
            [](const ValueMsg& a, const ValueMsg& b) { return a.sender < b.sender; });
  std::vector<std::pair<sim::NodeId, Value>> values;
  values.reserve(evidence.size());
  for (ValueMsg& msg : evidence) values.emplace_back(msg.sender, std::move(msg.value));
  return callbacks_.fuse(values);
}

// ------------------------------------------------------------- center side

std::uint64_t IvsService::initiate(VotingMode mode, int level, Value value,
                                   std::uint64_t parent_span) {
  const std::uint64_t round_id = next_round_++;
  Round& round = rounds_[round_id];
  round.mode = mode;
  round.level = level;
  round.center_value = std::move(value);
  round.span = node_.next_span();
  node_.stats().add("ivs.rounds_started");
  node_.tracer().emit({now(), sim::TraceType::kVoteRoundStart, node_.id(), sim::kNoNode,
                               round_id, 0, static_cast<double>(level),
                               mode == VotingMode::kDeterministic ? "deterministic"
                                                                  : "statistical",
                               round.span, parent_span});

  const auto circle =
      params_.circle_hops >= 2 ? sts_.two_hop_circle() : sts_.inner_circle();
  if (circle.size() < static_cast<std::size_t>(level)) {
    // Not enough (discovered) neighbors to ever reach L acks: abort now.
    abort_round(round_id);
    return round_id;
  }

  if (mode == VotingMode::kDeterministic) {
    round.agreed_value = round.center_value;
    begin_propose_phase(round_id, round);
  } else {
    round.phase = Phase::kSoliciting;
    // The center's own observation participates in the fusion.
    ValueMsg own;
    own.sender = node_.id();
    own.center = node_.id();
    own.round = round_id;
    own.value = round.center_value;
    charge_crypto(params_.cost.sign_delay);
    own.sig = node_signer_->sign(
        ValueMsg::value_bytes(node_.id(), round_id, node_.id(), own.value));
    round.evidence.push_back(std::move(own));
    round.value_senders.insert(node_.id());

    auto solicit = std::make_shared<SolicitMsg>();
    solicit->center = node_.id();
    solicit->round = round_id;
    solicit->level = level;
    solicit->ttl = params_.circle_hops;
    solicit->topic = round.center_value;
    broadcast(solicit, static_cast<std::uint32_t>(20 + solicit->topic.size()));
    arm_timeout(round_id, round);
  }
  return round_id;
}

void IvsService::begin_propose_phase(std::uint64_t round_id, Round& round) {
  // Round state machine: deterministic rounds propose immediately;
  // statistical rounds may enter the propose phase only out of soliciting.
  ICC_ASSERT(round.mode == VotingMode::kDeterministic || round.phase == Phase::kSoliciting,
             "a statistical round must gather values before proposing");
  ICC_ASSERT(round.partials.empty() && round.partial_senders.empty(),
             "a round must enter the propose phase with no collected partials");
  round.phase = Phase::kProposing;

  auto propose = std::make_shared<ProposeMsg>();
  propose->center = node_.id();
  propose->round = round_id;
  propose->level = round.level;
  propose->ttl = params_.circle_hops;
  propose->mode = round.mode;
  propose->value = round.agreed_value;
  propose->evidence = round.evidence;
  charge_crypto(params_.cost.sign_delay);
  propose->center_sig = node_signer_->sign(ProposeMsg::propose_bytes(
      node_.id(), round_id, round.level, round.mode, round.agreed_value));

  std::uint32_t size = static_cast<std::uint32_t>(21 + propose->value.size() +
                                                  pki_.signature_bytes());
  for (const ValueMsg& ev : propose->evidence) {
    size += static_cast<std::uint32_t>(16 + ev.value.size() + ev.sig.size());
  }

  // The center contributes its own partial signature (L+1 cooperating nodes
  // total, including the center — §2).
  charge_crypto(params_.cost.sign_delay);
  round.partials.push_back(signer_->partial_sign(
      round.level,
      AgreedMsg::signed_bytes(node_.id(), round_id, round.level, round.agreed_value)));
  round.partial_senders.insert(node_.id());

  broadcast(propose, size);
  arm_timeout(round_id, round);
}

void IvsService::arm_timeout(std::uint64_t round_id, Round& round) {
  node_.clock().cancel(round.timeout);
  round.timeout = node_.clock().schedule_in(
      params_.vote_timeout, [this, round_id] { abort_round(round_id); },
      net::EventTag::kVoting);
}

void IvsService::abort_round(std::uint64_t round_id) {
  const auto it = rounds_.find(round_id);
  if (it == rounds_.end()) return;
  node_.clock().cancel(it->second.timeout);
  const Value value = std::move(it->second.center_value);
  const std::uint64_t round_span = it->second.span;
  rounds_.erase(it);
  node_.stats().add("ivs.rounds_aborted");
  node_.tracer().emit({now(), sim::TraceType::kVoteVerdict, node_.id(), sim::kNoNode,
                               round_id, 0, 0.0, "aborted", round_span, 0});
  if (callbacks_.on_abort) callbacks_.on_abort(round_id, value);
}

void IvsService::handle_value(const ValueMsg& msg, sim::NodeId from) {
  if (msg.center != node_.id()) {
    // Two-hop circles: direct neighbors of the center relay replies from
    // two-hop members (one forwarding step, deduplicated).
    if (params_.circle_hops >= 2 && sts_.is_neighbor(msg.center) &&
        !suspicions_.suspected(msg.center, now()) &&
        forwarded_.emplace(msg.center, msg.round, msg.sender, 0).second) {
      const auto size = static_cast<std::uint32_t>(20 + msg.value.size() + msg.sig.size());
      unicast(msg.center, std::make_shared<ValueMsg>(msg), size);
    }
    return;
  }
  const auto it = rounds_.find(msg.round);
  if (it == rounds_.end()) return;
  Round& round = it->second;
  if (round.mode != VotingMode::kStatistical || round.phase != Phase::kSoliciting) return;
  if (suspicions_.suspected(msg.sender, now())) return;
  if (params_.circle_hops >= 2 ? !sts_.is_within_two_hops(msg.sender)
                               : !sts_.is_neighbor(msg.sender)) {
    return;
  }
  if (round.value_senders.count(msg.sender) != 0) return;

  charge_crypto(params_.cost.verify_delay);
  if (!pki_.verify(msg.sender,
                   ValueMsg::value_bytes(node_.id(), msg.round, msg.sender, msg.value),
                   msg.sig)) {
    suspicions_.suspect_temporarily(from, now(), "bad value signature");
    trace_suspicion(node_, node_.id(), from, sim::TraceType::kSuspect,
                    "bad_value_signature");
    return;
  }

  round.value_senders.insert(msg.sender);
  round.evidence.push_back(msg);
  ICC_ASSERT(round.evidence.size() == round.value_senders.size(),
             "every piece of evidence must come from a distinct sender");

  // Center's own value is in the evidence, so L others makes L+1 total.
  if (round.value_senders.size() >= static_cast<std::size_t>(round.level) + 1) {
    round.agreed_value = fuse_sorted(round.evidence);
    // Optional application acceptance test on the fused value (e.g., the
    // fused energy still clears the detection threshold).
    if (callbacks_.check && !callbacks_.check(node_.id(), round.agreed_value)) {
      abort_round(msg.round);
      return;
    }
    begin_propose_phase(msg.round, round);
  }
}

void IvsService::handle_ack(const AckMsg& msg, sim::NodeId from) {
  if (msg.center != node_.id()) {
    if (params_.circle_hops >= 2 && sts_.is_neighbor(msg.center) &&
        !suspicions_.suspected(msg.center, now()) &&
        forwarded_.emplace(msg.center, msg.round, msg.sender, 1).second) {
      const auto size = static_cast<std::uint32_t>(20 + scheme_.partial_sig_bytes());
      unicast(msg.center, std::make_shared<AckMsg>(msg), size);
    }
    return;
  }
  const auto it = rounds_.find(msg.round);
  if (it == rounds_.end()) return;
  Round& round = it->second;
  if (round.phase != Phase::kProposing) return;
  if (suspicions_.suspected(msg.sender, now())) return;
  if (round.partial_senders.count(msg.sender) != 0) return;

  const auto signed_bytes =
      AgreedMsg::signed_bytes(node_.id(), msg.round, round.level, round.agreed_value);
  charge_crypto(params_.cost.verify_delay);
  if (!scheme_.verify_partial(signed_bytes, msg.psig)) {
    suspicions_.suspect_temporarily(msg.sender, now(), "bad partial signature");
    trace_suspicion(node_, node_.id(), msg.sender, sim::TraceType::kSuspect,
                    "bad_partial_signature");
    return;
  }
  (void)from;

  round.partial_senders.insert(msg.sender);
  round.partials.push_back(msg.psig);
  ICC_ASSERT(round.partials.size() == round.partial_senders.size(),
             "every partial signature must come from a distinct sender");
  if (round.partial_senders.size() >= static_cast<std::size_t>(round.level) + 1) {
    complete_round(msg.round, round);
  }
}

void IvsService::complete_round(std::uint64_t round_id, Round& round) {
  // Agreement precondition (§4.2): completion requires L+1 distinct
  // approvals (the center's own partial plus L acks), in the propose phase.
  ICC_ASSERT(round.phase == Phase::kProposing, "only a proposed round can complete");
  ICC_ASSERT(round.partial_senders.size() >= static_cast<std::size_t>(round.level) + 1,
             "completing a round requires L+1 distinct partial signatures");
  const auto signed_bytes =
      AgreedMsg::signed_bytes(node_.id(), round_id, round.level, round.agreed_value);
  charge_crypto(params_.cost.combine_delay);
  auto sig = scheme_.combine(round.level, signed_bytes, round.partials);
  if (!sig) {
    abort_round(round_id);
    return;
  }

  auto agreed = std::make_shared<AgreedMsg>();
  agreed->source = node_.id();
  agreed->round = round_id;
  agreed->level = round.level;
  agreed->ttl = params_.circle_hops;
  agreed->value = round.agreed_value;
  agreed->sig = std::move(*sig);

  node_.clock().cancel(round.timeout);
  // `round` references the map node: copy everything the emit needs before
  // erase invalidates it.
  const int level = round.level;
  const std::uint64_t round_span = round.span;
  rounds_.erase(round_id);
  node_.stats().add("ivs.rounds_completed");
  node_.tracer().emit({now(), sim::TraceType::kVoteVerdict, node_.id(), sim::kNoNode,
                               round_id, 0, static_cast<double>(level), "completed",
                               round_span, 0});

  // "c assembles an agreed message and sends it to all its inner-circle
  // nodes" — participants learn the outcome (Fig 6's onAgreed updates).
  broadcast(agreed, agreed->wire_size());
  if (callbacks_.on_agreed) callbacks_.on_agreed(*agreed, /*is_center=*/true);
}

// -------------------------------------------------------- participant side

void IvsService::handle_solicit(const SolicitMsg& msg, sim::NodeId from) {
  if (msg.center == node_.id()) return;
  if (suspicions_.suspected(msg.center, now()) || suspicions_.suspected(from, now())) return;

  const bool direct = sts_.is_neighbor(msg.center);
  // Two-hop circles: the center's direct neighbors re-broadcast the solicit
  // once so two-hop members hear it.
  if (msg.ttl > 1 && direct && params_.circle_hops >= 2 &&
      relayed_.emplace(msg.center, msg.round, 0).second) {
    auto relay = std::make_shared<SolicitMsg>(msg);
    relay->ttl = msg.ttl - 1;
    broadcast(relay, static_cast<std::uint32_t>(20 + relay->topic.size()));
  }

  if (!direct && !(params_.circle_hops >= 2 && sts_.is_within_two_hops(msg.center))) return;
  if (!callbacks_.get_value) return;
  if (!value_replied_.emplace(msg.center, msg.round).second) return;

  const auto value = callbacks_.get_value(msg.center, msg.topic);
  if (!value) return;

  auto reply = std::make_shared<ValueMsg>();
  reply->sender = node_.id();
  reply->center = msg.center;
  reply->round = msg.round;
  reply->value = *value;
  charge_crypto(params_.cost.sign_delay);
  reply->sig = node_signer_->sign(
      ValueMsg::value_bytes(msg.center, msg.round, node_.id(), *value));
  const auto size = static_cast<std::uint32_t>(20 + reply->value.size() + reply->sig.size());

  // Replies route directly to a neighboring center, or back through the
  // relay that delivered the solicit. Crypto latency: the reply leaves
  // after the signing delay.
  const sim::NodeId next_hop = direct ? msg.center : from;
  node_.clock().schedule_in(params_.cost.sign_delay, [this, next_hop, reply, size] {
    unicast(next_hop, reply, size);
  }, net::EventTag::kVoting);
}

void IvsService::handle_propose(const ProposeMsg& msg, sim::NodeId from) {
  if (msg.center == node_.id()) return;
  if (suspicions_.suspected(msg.center, now()) || suspicions_.suspected(from, now())) return;
  if (msg.level < 1 || msg.level > scheme_.max_level()) return;

  const bool direct = sts_.is_neighbor(msg.center);
  if (msg.ttl > 1 && direct && params_.circle_hops >= 2 &&
      relayed_.emplace(msg.center, msg.round, 1).second) {
    auto relay = std::make_shared<ProposeMsg>(msg);
    relay->ttl = msg.ttl - 1;
    std::uint32_t relay_size = static_cast<std::uint32_t>(21 + relay->value.size() +
                                                          relay->center_sig.size());
    for (const ValueMsg& ev : relay->evidence) {
      relay_size += static_cast<std::uint32_t>(16 + ev.value.size() + ev.sig.size());
    }
    broadcast(relay, relay_size);
  }

  if (!direct && !(params_.circle_hops >= 2 && sts_.is_within_two_hops(msg.center))) return;
  if (!acked_.emplace(msg.center, msg.round).second) return;

  charge_crypto(params_.cost.verify_delay);
  const bool center_sig_ok = pki_.verify(
      msg.center,
      ProposeMsg::propose_bytes(msg.center, msg.round, msg.level, msg.mode, msg.value),
      msg.center_sig);
  if (!center_sig_ok) {
    suspicions_.suspect_temporarily(from, now(), "bad propose signature");
    trace_suspicion(node_, node_.id(), from, sim::TraceType::kSuspect,
                    "bad_propose_signature");
    return;
  }

  if (msg.mode == VotingMode::kDeterministic) {
    // Application-aware check (Fig 3a / Fig 6). A failed check only
    // withholds this node's approval: the check can be subjective (this
    // node may simply lack state a correct center legitimately has, e.g. a
    // missed fw-map update), so it is not treated as evidence of
    // misbehavior — the dependability level L is what stops an invalid
    // value from gathering enough approvals.
    if (callbacks_.check && !callbacks_.check(msg.center, msg.value)) {
      node_.stats().add("ivs.check_rejected");
      return;
    }
  } else {
    if (!callbacks_.fuse) return;
    // Validate the evidence: individually signed observations from distinct
    // senders, including the center's own, all bound to this round.
    if (msg.evidence.size() < static_cast<std::size_t>(msg.level) + 1) return;
    std::set<sim::NodeId> senders;
    bool center_present = false;
    for (const ValueMsg& ev : msg.evidence) {
      if (ev.round != msg.round) return;
      if (!senders.insert(ev.sender).second) return;
      charge_crypto(params_.cost.verify_delay);
      if (!pki_.verify(ev.sender,
                       ValueMsg::value_bytes(msg.center, msg.round, ev.sender, ev.value),
                       ev.sig)) {
        return;
      }
      if (ev.sender == msg.center) center_present = true;
    }
    if (!center_present) return;

    // Recompute the fusion: a mismatch under a valid center signature is
    // provable misbehavior -> permanent conviction (§4, Suspicions Manager).
    const Value recomputed = fuse_sorted(msg.evidence);
    if (recomputed != msg.value) {
      suspicions_.convict(msg.center, "statistical fusion mismatch");
      trace_suspicion(node_, node_.id(), msg.center, sim::TraceType::kConvict,
                      "fusion_mismatch");
      node_.stats().add("ivs.fusion_rejected");
      return;
    }
    if (callbacks_.check && !callbacks_.check(msg.center, msg.value)) {
      node_.stats().add("ivs.check_rejected");
      return;
    }
  }

  send_ack(msg.center, direct ? msg.center : from, msg.round, msg.level, msg.value);
}

void IvsService::send_ack(sim::NodeId center, sim::NodeId next_hop, std::uint64_t round,
                          int level, const Value& value) {
  auto ack = std::make_shared<AckMsg>();
  ack->sender = node_.id();
  ack->center = center;
  ack->round = round;
  charge_crypto(params_.cost.sign_delay);
  ack->psig = signer_->partial_sign(level, AgreedMsg::signed_bytes(center, round, level, value));
  const auto size = static_cast<std::uint32_t>(20 + scheme_.partial_sig_bytes());
  node_.clock().schedule_in(params_.cost.sign_delay, [this, next_hop, ack, size] {
    unicast(next_hop, ack, size);
  }, net::EventTag::kVoting);
  node_.stats().add("ivs.acks_sent");
}

void IvsService::handle_agreed(const AgreedMsg& msg, sim::NodeId from) {
  (void)from;
  if (msg.source == node_.id()) return;
  if (msg.ttl > 1 && sts_.is_neighbor(msg.source) && params_.circle_hops >= 2 &&
      relayed_.emplace(msg.source, msg.round, 2).second) {
    auto relay = std::make_shared<AgreedMsg>(msg);
    relay->ttl = msg.ttl - 1;
    broadcast(relay, relay->wire_size());
  }
  if (!delivered_.emplace(msg.source, msg.round).second) return;
  charge_crypto(params_.cost.verify_delay);
  if (!verify_agreed(msg)) {
    suspicions_.suspect_temporarily(from, now(), "invalid agreed signature");
    trace_suspicion(node_, node_.id(), from, sim::TraceType::kSuspect,
                    "invalid_agreed_signature");
    node_.stats().add("ivs.agreed_rejected");
    return;
  }
  node_.stats().add("ivs.agreed_delivered");
  if (callbacks_.on_agreed) callbacks_.on_agreed(msg, /*is_center=*/false);
}

bool IvsService::verify_agreed(const AgreedMsg& msg) const {
  if (msg.sig.level != msg.level) return false;
  return scheme_.verify(AgreedMsg::signed_bytes(msg.source, msg.round, msg.level, msg.value),
                        msg.sig);
}

void IvsService::handle_packet(const sim::Packet& packet, sim::NodeId from) {
  if (const auto* solicit = packet.body_as<SolicitMsg>()) {
    handle_solicit(*solicit, from);
  } else if (const auto* value = packet.body_as<ValueMsg>()) {
    handle_value(*value, from);
  } else if (const auto* propose = packet.body_as<ProposeMsg>()) {
    handle_propose(*propose, from);
  } else if (const auto* ack = packet.body_as<AckMsg>()) {
    handle_ack(*ack, from);
  } else if (const auto* agreed = packet.body_as<AgreedMsg>()) {
    handle_agreed(*agreed, from);
  }
}

}  // namespace icc::core
