// Inner-circle Voting Service (§4.2, Fig 3).
//
// Deterministic voting: the center proposes its value; each inner-circle
// node that accepts it (application `check`) replies with a partial
// threshold signature; L acks plus the center's own partial combine into a
// self-checking agreed message.
//
// Statistical voting: the center solicits observations, fuses L of them with
// its own through the application's fault-tolerant fusion function (§4.3),
// and proposes the fused value together with the signed observations as
// evidence; participants recompute the fusion before acking.
//
// Properties (§4.2): Agreement — a valid level-L agreed message requires
// approval from T = L - F_B non-Byzantine nodes; Integrity — remote
// recipients can rely on a verifying agreed message; Termination — a round
// started by a correct center completes or aborts by its timeout.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "core/callbacks.hpp"
#include "core/messages.hpp"
#include "core/suspicions.hpp"
#include "core/topology.hpp"
#include "crypto/pki.hpp"
#include "crypto/scheme.hpp"
#include "net/host.hpp"

namespace icc::core {

// icc:affinity(node)
class IvsService {
 public:
  struct Params {
    sim::Time vote_timeout{0.25};  ///< per-phase deadline at the center
    CryptoCostModel cost{};
    /// Inner-circle radius in hops (§3): 1 = the paper's default one-hop
    /// circles; 2 = the "larger inner-circle" extension, where direct
    /// neighbors of the center relay round traffic to/from two-hop members.
    int circle_hops{1};
  };

  IvsService(net::Host& node, Params params, SecureTopologyService& sts,
             SuspicionsManager& suspicions, crypto::ThresholdScheme& scheme,
             std::unique_ptr<crypto::ThresholdSigner> signer, crypto::Pki& pki,
             std::unique_ptr<crypto::NodeSigner> node_signer, Callbacks& callbacks);

  /// Center API: start a voting round over `value` (deterministic) or with
  /// `value` as the solicit topic / own observation (statistical). Returns
  /// the round id. The round resolves through on_agreed / on_abort.
  /// `parent_span` optionally links the round to the packet (or other trace
  /// span) that caused it, so lineage reconstruction can walk from an
  /// intercepted packet to the round's verdict.
  std::uint64_t initiate(VotingMode mode, int level, Value value,
                         std::uint64_t parent_span = 0);

  /// Packet entry point (Port::kIvs), wired up by the framework.
  void handle_packet(const sim::Packet& packet, sim::NodeId from);

  /// Verify an agreed message against the threshold scheme (Integrity).
  [[nodiscard]] bool verify_agreed(const AgreedMsg& msg) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t active_rounds() const noexcept { return rounds_.size(); }

 private:
  enum class Phase { kSoliciting, kProposing };

  struct Round {
    VotingMode mode{VotingMode::kDeterministic};
    int level{1};
    Phase phase{Phase::kProposing};
    Value center_value;
    Value agreed_value;  ///< = center_value (det) or fused value (stat)
    std::vector<crypto::PartialSig> partials;
    std::set<sim::NodeId> partial_senders;
    std::vector<ValueMsg> evidence;  ///< statistical: signed observations
    std::set<sim::NodeId> value_senders;
    net::TimerId timeout{net::kNoTimer};
    std::uint64_t span{0};  ///< lineage span naming this round in the trace
  };

  // --- center side ---
  void begin_propose_phase(std::uint64_t round_id, Round& round);
  void handle_value(const ValueMsg& msg, sim::NodeId from);
  void handle_ack(const AckMsg& msg, sim::NodeId from);
  void complete_round(std::uint64_t round_id, Round& round);
  void abort_round(std::uint64_t round_id);
  void arm_timeout(std::uint64_t round_id, Round& round);

  // --- participant side ---
  void handle_solicit(const SolicitMsg& msg, sim::NodeId from);
  void handle_propose(const ProposeMsg& msg, sim::NodeId from);
  void handle_agreed(const AgreedMsg& msg, sim::NodeId from);
  void send_ack(sim::NodeId center, sim::NodeId next_hop, std::uint64_t round,
                int level, const Value& value);

  // --- helpers ---
  void broadcast(std::shared_ptr<const sim::Payload> body, std::uint32_t size);
  void unicast(sim::NodeId to, std::shared_ptr<const sim::Payload> body, std::uint32_t size);
  void charge_crypto(sim::Time delay_unused_for_energy_only);
  [[nodiscard]] Value fuse_sorted(std::vector<ValueMsg> evidence) const;
  [[nodiscard]] sim::Time now() const;

  net::Host& node_;
  Params params_;
  SecureTopologyService& sts_;
  SuspicionsManager& suspicions_;
  crypto::ThresholdScheme& scheme_;
  std::unique_ptr<crypto::ThresholdSigner> signer_;
  crypto::Pki& pki_;
  std::unique_ptr<crypto::NodeSigner> node_signer_;
  Callbacks& callbacks_;

  std::uint64_t next_round_{1};
  /// Rounds we center. Keyed access only, but ordered so any future sweep
  /// (abort-all, diagnostics dumps) visits rounds in id order instead of
  /// hash order (DESIGN.md §9).
  std::map<std::uint64_t, Round> rounds_;

  // Participant-side dedup: rounds we already contributed a value / ack to,
  // and agreed messages already delivered, keyed by (center, round).
  std::set<std::pair<sim::NodeId, std::uint64_t>> value_replied_;
  std::set<std::pair<sim::NodeId, std::uint64_t>> acked_;
  std::set<std::pair<sim::NodeId, std::uint64_t>> delivered_;
  // Relay dedup for two-hop circles: (center, round, message kind).
  std::set<std::tuple<sim::NodeId, std::uint64_t, int>> relayed_;
  // Reply-forwarding dedup: (center, round, original sender, message kind).
  std::set<std::tuple<sim::NodeId, std::uint64_t, sim::NodeId, int>> forwarded_;
};

}  // namespace icc::core
