// Suspicions Manager (§4, component 2).
//
// A node p suspects node q *permanently* only with provable evidence of
// misbehavior (e.g., a properly signed message with an invalid field or one
// that violates the executing protocol); otherwise suspicion is temporary.
// The Inner-circle Interceptor consults this list to suppress traffic from
// suspected nodes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace icc::core {

/// Strike-based escalation: repeated temporary suspicions of one node
/// within a sliding window harden into a conviction. The paper reserves
/// convictions for provable evidence; escalation extends that to attackers
/// whose individual actions each look merely dubious (a cooperative
/// blackhole pair splits the evidence across two nodes, so neither ever
/// produces one provably bad message) but whose *pattern* is damning.
struct EscalationParams {
  /// Suspicions within the window needed to convict; 0 disables escalation
  /// entirely, preserving the paper's evidence-only conviction rule.
  int strike_threshold{0};
  sim::Time strike_window{60.0};
  /// Colluders fall together: once one node has been convicted by
  /// escalation, later nodes convict at half the threshold — the first
  /// conviction is the hard part, its partner inherits the distrust.
  bool convict_partners{false};
};

// icc:affinity(node)
class SuspicionsManager {
 public:
  /// Default temporary-suspicion duration ("a few minutes" in the paper).
  explicit SuspicionsManager(sim::Time temporary_duration = 120.0)
      : temporary_duration_{temporary_duration} {}

  void set_escalation(EscalationParams params) { escalation_ = params; }
  [[nodiscard]] std::size_t escalated_convictions() const noexcept {
    return escalated_convictions_;
  }

  /// Evidence-free suspicion: expires after the configured duration. With
  /// escalation armed, also records a strike and may convict (see
  /// EscalationParams).
  void suspect_temporarily(sim::NodeId id, sim::Time now, const std::string& reason);

  /// Provable misbehavior: permanent conviction. A conviction never expires
  /// and overrides any temporary entry.
  void convict(sim::NodeId id, const std::string& evidence);

  [[nodiscard]] bool suspected(sim::NodeId id, sim::Time now) const;
  [[nodiscard]] bool convicted(sim::NodeId id) const;

  /// All currently suspected nodes (tests / tracing).
  [[nodiscard]] std::vector<sim::NodeId> suspects(sim::Time now) const;
  [[nodiscard]] std::size_t conviction_count() const { return convicted_.size(); }

 private:
  struct TempEntry {
    sim::Time until;
    std::string reason;
  };

  sim::Time temporary_duration_;
  EscalationParams escalation_{};
  std::size_t escalated_convictions_{0};
  // Ordered deliberately: suspects() iterates both maps and its output can
  // steer interception decisions, so the walk must not depend on hash-table
  // layout (DESIGN.md §9).
  std::map<sim::NodeId, TempEntry> temporary_;
  std::map<sim::NodeId, std::string> convicted_;
  std::map<sim::NodeId, std::vector<sim::Time>> strikes_;
};

}  // namespace icc::core
