// Secure Topology Service (§4.1).
//
// Discovers and authenticates bidirectional links up to two hops away.
// Implementation follows the paper: periodic broadcast beacons (period
// tau < Delta_STS / 2) carrying the origin's authenticated neighbor list,
// with link authentication bootstrapped by the (fixed) Needham–Schroeder–
// Lowe handshake; each listed neighbor gets an HMAC tag under the pairwise
// session key so it can verify both the beacon's origin and the mutuality
// of the adjacency claim.
//
// Properties (§4.1), exercised by tests/core/topology_test.cpp:
//  * Completeness  — links silent for Delta_STS drop out of the view.
//  * One-Hop Accuracy — a timely, authenticated neighbor appears in the view.
//  * Two-Hop Accuracy — a correct neighbor's own neighbors become visible.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/messages.hpp"
#include "crypto/ns_lowe.hpp"
#include "net/host.hpp"
#include "sim/rng.hpp"

namespace icc::core {

// icc:affinity(node)
class SecureTopologyService {
 public:
  struct Params {
    sim::Time delta_sts{2.0};  ///< freshness window Delta_STS
    sim::Time period{0.0};     ///< beacon period tau; 0 => 0.45 * delta_sts
    sim::Time handshake_retry{1.0};
    /// Upper bound on the random delay before the first beacon; 0 => one
    /// full period. Lowering it speeds up cold-start link discovery when
    /// Delta_STS is large (the sensor study uses Delta_STS = 100 s).
    sim::Time initial_beacon_delay{0.0};
  };

  SecureTopologyService(net::Host& node, Params params,
                        const crypto::AsymmetricCipher& cipher);

  /// Begin beaconing. Call once after construction.
  void start();

  /// The node's inner circle: fresh, authenticated one-hop neighbors.
  [[nodiscard]] std::vector<sim::NodeId> inner_circle() const;
  [[nodiscard]] bool is_neighbor(sim::NodeId q) const;
  /// Two-hop view: `q`'s own (claimed, tag-authenticated to q's neighbors)
  /// neighbor list, if q's claim is fresh.
  [[nodiscard]] std::vector<sim::NodeId> neighbors_of(sim::NodeId q) const;
  /// Is `q` reachable within two hops — i.e. a fresh direct neighbor, or
  /// listed in a fresh direct neighbor's claimed neighbor set? Used by
  /// two-hop inner circles (§3) to validate center eligibility.
  [[nodiscard]] bool is_within_two_hops(sim::NodeId q) const;
  /// All nodes within two hops (the §3 "larger inner-circle" membership).
  [[nodiscard]] std::vector<sim::NodeId> two_hop_circle() const;
  [[nodiscard]] std::optional<sim::Vec2> position_of(sim::NodeId q) const;
  [[nodiscard]] const crypto::SessionKey* session_with(sim::NodeId q) const;

  /// Packet entry point (Port::kSts), wired up by the framework.
  void handle_packet(const sim::Packet& packet, sim::NodeId from);

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  struct PeerState {
    bool authenticated{false};
    crypto::SessionKey key{};
    sim::Time last_heard{-1e18};  ///< last authenticated contact
    sim::Vec2 pos;
    bool pos_known{false};
    std::vector<sim::NodeId> claimed_neighbors;
    sim::Time claim_time{-1e18};
    std::optional<crypto::NslSession> handshake;
    sim::Time handshake_started{-1e18};
  };

  void send_beacon();
  void handle_beacon(const StsBeacon& beacon, sim::NodeId from);
  void handle_nsl(const NslMsg& msg, sim::NodeId from);
  void maybe_begin_handshake(sim::NodeId peer);
  void send_nsl(sim::NodeId to, int phase, crypto::Ciphertext ct);
  [[nodiscard]] crypto::Nonce fresh_nonce();
  [[nodiscard]] sim::Time now() const;

  net::Host& node_;
  Params params_;
  const crypto::AsymmetricCipher& cipher_;
  sim::Rng rng_;
  std::uint64_t beacon_seq_{0};
  // Ordered deliberately: send_beacon iterates peers_ to assemble the
  // beacon's neighbor list (wire bytes) and inner_circle feeds voting-round
  // membership, so iteration order is simulation-affecting. std::map keys
  // both walks on NodeId instead of hash-table layout (DESIGN.md §9).
  std::map<sim::NodeId, PeerState> peers_;
};

}  // namespace icc::core
