// Canonical byte serialization for signed protocol content.
//
// Threshold signatures bind (source, round, level, value); STS beacon tags
// bind (origin, seq, position, neighbor list). Both sides must serialize
// identically, so all multi-byte fields are little-endian through these
// helpers.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace icc::core {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void str(const std::string& s) {
    bytes(std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader with explicit failure (nullopt) instead of exceptions: malformed
/// input from Byzantine nodes is an expected event, not a program error.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_{data} {}

  std::optional<std::uint8_t> u8() {
    if (off_ + 1 > data_.size()) return std::nullopt;
    return data_[off_++];
  }
  std::optional<std::uint32_t> u32() {
    if (off_ + 4 > data_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[off_++]} << (8 * i);
    return v;
  }
  std::optional<std::uint64_t> u64() {
    if (off_ + 8 > data_.size()) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[off_++]} << (8 * i);
    return v;
  }
  std::optional<double> f64() {
    const auto bits = u64();
    if (!bits) return std::nullopt;
    double v;
    std::memcpy(&v, &*bits, 8);
    return v;
  }
  std::optional<std::vector<std::uint8_t>> bytes() {
    const auto len = u32();
    if (!len || off_ + *len > data_.size()) return std::nullopt;
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(off_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(off_ + *len));
    off_ += *len;
    return out;
  }
  [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t off_{0};
};

}  // namespace icc::core
