#include "core/framework.hpp"

#include "fault/ledger.hpp"
#include "sim/trace.hpp"

namespace icc::core {

InnerCircleNode::InnerCircleNode(net::Host& node, InnerCircleConfig config,
                                 crypto::ThresholdScheme& scheme, crypto::Pki& pki,
                                 const crypto::AsymmetricCipher& cipher)
    : node_{node},
      config_{[&config] {
        InnerCircleConfig c = config;
        c.ivs.circle_hops = c.circle_hops;
        return c;
      }()},
      suspicions_{config.suspicion_duration},
      sts_{node, config.sts, cipher},
      ivs_{node,          config_.ivs,       sts_,
           suspicions_,   scheme,            scheme.issue_signer(node.id()),
           pki,           pki.issue_signer(node.id()),
           callbacks_} {
  node_.transport().register_handler(sim::Port::kSts, [this](const sim::Packet& p, sim::NodeId from) {
    sts_.handle_packet(p, from);
  });
  node_.transport().register_handler(sim::Port::kIvs, [this](const sim::Packet& p, sim::NodeId from) {
    ivs_.handle_packet(p, from);
  });
  node_.transport().add_inbound_filter([this](const sim::Packet& p, sim::NodeId from) {
    return filter_inbound(p, from);
  });
  node_.transport().add_outbound_filter([this](const sim::Packet& p, sim::NodeId next_hop) {
    return filter_outbound(p, next_hop);
  });
}

void InnerCircleNode::start() { sts_.start(); }

void InnerCircleNode::intercept_outgoing(Matcher match, Extractor extract) {
  outgoing_rules_.push_back(InterceptRule{std::move(match), std::move(extract)});
}

void InnerCircleNode::suppress_incoming(IncomingMatcher match) {
  incoming_rules_.push_back(std::move(match));
}

std::optional<AgreedMsg> InnerCircleNode::verify_agreed_bytes(
    std::span<const std::uint8_t> bytes) const {
  auto msg = AgreedMsg::deserialize(bytes);
  if (!msg) return std::nullopt;
  if (!ivs_.verify_agreed(*msg)) return std::nullopt;
  return msg;
}

net::FilterVerdict InnerCircleNode::filter_outbound(const sim::Packet& packet,
                                                    sim::NodeId next_hop) {
  for (const InterceptRule& rule : outgoing_rules_) {
    if (rule.match(packet, next_hop)) {
      // Redirect to the voting service (Fig 1: matching outgoing messages
      // are handed to the inner-circle services instead of the link layer).
      node_.stats().add("icc.outgoing_intercepted");
      // The voting round descends from the intercepted packet (its uid is
      // already stamped: link_send stamps before the filter chain runs).
      ivs_.initiate(config_.mode, config_.level, rule.extract(packet, next_hop),
                    packet.uid);
      return net::FilterVerdict::kConsumed;
    }
  }
  return net::FilterVerdict::kPass;
}

net::FilterVerdict InnerCircleNode::filter_inbound(const sim::Packet& packet,
                                                   sim::NodeId from) {
  const sim::Time now = node_.now();
  // Convicted nodes are cut off entirely; temporarily suspected nodes only
  // lose access to the inner-circle services and guarded templates.
  if (suspicions_.convicted(from)) {
    node_.stats().add("icc.suppressed_convicted");
    node_.tracer().emit({now, sim::TraceType::kPacketDrop, node_.id(), from,
                                 packet.uid, packet.size_bytes, 0.0, "suppressed_convicted",
                                 packet.uid, packet.parent});
    fault::report_neutralized(node_, fault::FaultClass::kProtocol, from, 0,
                              packet.uid);
    return net::FilterVerdict::kDrop;
  }
  const bool suspected = suspicions_.suspected(from, now);
  if (suspected && packet.port == sim::Port::kIvs) {
    node_.stats().add("icc.suppressed_suspected");
    node_.tracer().emit({now, sim::TraceType::kPacketDrop, node_.id(), from,
                                 packet.uid, packet.size_bytes, 0.0, "suppressed_suspected",
                                 packet.uid, packet.parent});
    return net::FilterVerdict::kDrop;
  }
  for (const IncomingMatcher& match : incoming_rules_) {
    if (match(packet)) {
      // Guarded template: the raw protocol message must never be accepted
      // off the air — only its agreed, signature-checked form is.
      node_.stats().add("icc.suppressed_raw");
      node_.tracer().emit({now, sim::TraceType::kPacketDrop, node_.id(), from,
                                   packet.uid, packet.size_bytes, 0.0, "suppressed_raw",
                                   packet.uid, packet.parent});
      // Discarding the raw template message is both the detection (the
      // template violation is the observed symptom) and the masking
      // neutralization (§3): a forged RREP never reaches the routing
      // service. Attributed to the sender — for the black hole that is the
      // attacker itself.
      fault::report_detected(node_, fault::FaultClass::kProtocol, from, 0,
                             packet.uid);
      fault::report_neutralized(node_, fault::FaultClass::kProtocol, from, 0,
                                packet.uid);
      return net::FilterVerdict::kDrop;
    }
  }
  return net::FilterVerdict::kPass;
}

}  // namespace icc::core
