#include "core/topology.hpp"

#include <algorithm>

namespace icc::core {

namespace {
constexpr std::uint64_t kStsRngSalt = 0x53545300ull;  // "STS"
}

SecureTopologyService::SecureTopologyService(net::Host& node, Params params,
                                             const crypto::AsymmetricCipher& cipher)
    : node_{node},
      params_{params},
      cipher_{cipher},
      rng_{node.fork_rng(kStsRngSalt + node.id())} {
  if (params_.period <= 0.0) params_.period = 0.45 * params_.delta_sts;
}

sim::Time SecureTopologyService::now() const { return node_.now(); }

void SecureTopologyService::start() {
  // Desynchronize the first beacon across nodes.
  const sim::Time window =
      params_.initial_beacon_delay > 0.0 ? params_.initial_beacon_delay : params_.period;
  node_.clock().schedule_in(rng_.uniform(0.0, window), [this] { send_beacon(); },
                            net::EventTag::kVoting);
}

std::vector<sim::NodeId> SecureTopologyService::inner_circle() const {
  std::vector<sim::NodeId> out;
  out.reserve(peers_.size());
  const sim::Time t = now();
  for (const auto& [id, peer] : peers_) {
    if (peer.authenticated && t - peer.last_heard <= params_.delta_sts) out.push_back(id);
  }
  return out;
}

bool SecureTopologyService::is_neighbor(sim::NodeId q) const {
  const auto it = peers_.find(q);
  return it != peers_.end() && it->second.authenticated &&
         now() - it->second.last_heard <= params_.delta_sts;
}

std::vector<sim::NodeId> SecureTopologyService::neighbors_of(sim::NodeId q) const {
  const auto it = peers_.find(q);
  if (it == peers_.end() || !it->second.authenticated) return {};
  if (now() - it->second.claim_time > params_.delta_sts) return {};
  return it->second.claimed_neighbors;
}

bool SecureTopologyService::is_within_two_hops(sim::NodeId q) const {
  if (q == node_.id()) return false;
  if (is_neighbor(q)) return true;
  for (const sim::NodeId n : inner_circle()) {
    const auto claimed = neighbors_of(n);
    if (std::find(claimed.begin(), claimed.end(), q) != claimed.end()) return true;
  }
  return false;
}

std::vector<sim::NodeId> SecureTopologyService::two_hop_circle() const {
  const std::vector<sim::NodeId> direct = inner_circle();
  std::vector<sim::NodeId> out = direct;
  for (const sim::NodeId n : direct) {
    for (const sim::NodeId q : neighbors_of(n)) {
      if (q == node_.id()) continue;
      if (std::find(out.begin(), out.end(), q) == out.end()) out.push_back(q);
    }
  }
  return out;
}

std::optional<sim::Vec2> SecureTopologyService::position_of(sim::NodeId q) const {
  const auto it = peers_.find(q);
  if (it == peers_.end() || !it->second.pos_known) return std::nullopt;
  return it->second.pos;
}

const crypto::SessionKey* SecureTopologyService::session_with(sim::NodeId q) const {
  const auto it = peers_.find(q);
  if (it == peers_.end() || !it->second.authenticated) return nullptr;
  return &it->second.key;
}

crypto::Nonce SecureTopologyService::fresh_nonce() {
  crypto::Nonce n{};
  for (std::size_t i = 0; i < n.size(); i += 4) {
    const std::uint32_t r = rng_.uniform_int(0, 0xFFFFFFFFu);
    for (std::size_t b = 0; b < 4; ++b) n[i + b] = static_cast<std::uint8_t>(r >> (8 * b));
  }
  return n;
}

void SecureTopologyService::send_beacon() {
  const sim::Time t = now();
  auto beacon = std::make_shared<StsBeacon>();
  beacon->origin = node_.id();
  beacon->seq = ++beacon_seq_;
  beacon->pos = node_.position();

  beacon->neighbors.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) {
    if (peer.authenticated && t - peer.last_heard <= params_.delta_sts) {
      beacon->neighbors.push_back(id);
    }
  }
  const auto auth = StsBeacon::auth_bytes(beacon->origin, beacon->seq, beacon->pos,
                                          beacon->neighbors);
  beacon->tags.reserve(beacon->neighbors.size());
  for (const sim::NodeId id : beacon->neighbors) {
    beacon->tags.push_back(crypto::hmac_sha256(peers_.at(id).key, std::span{auth}));
  }

  sim::Packet packet;
  packet.src = node_.id();
  packet.dst = sim::kBroadcast;
  packet.port = sim::Port::kSts;
  packet.size_bytes = static_cast<std::uint32_t>(24 + 36 * beacon->neighbors.size());
  packet.body = beacon;
  node_.transport().send_unfiltered(std::move(packet), sim::kBroadcast);
  node_.stats().add("sts.beacons_sent");

  const double jitter = rng_.uniform(0.9, 1.1);
  node_.clock().schedule_in(params_.period * jitter, [this] { send_beacon(); },
                            net::EventTag::kVoting);
}

void SecureTopologyService::handle_packet(const sim::Packet& packet, sim::NodeId from) {
  if (const auto* beacon = packet.body_as<StsBeacon>()) {
    handle_beacon(*beacon, from);
  } else if (const auto* nsl = packet.body_as<NslMsg>()) {
    handle_nsl(*nsl, from);
  }
}

void SecureTopologyService::handle_beacon(const StsBeacon& beacon, sim::NodeId /*from*/) {
  // Deliberately ignore the link-layer sender: radio source addresses are
  // spoofable, so beacon authenticity rests solely on the per-neighbor tag.
  if (beacon.origin == node_.id()) return;
  PeerState& peer = peers_[beacon.origin];

  if (!peer.authenticated) {
    // Record a provisional position and bootstrap authentication.
    peer.pos = beacon.pos;
    peer.pos_known = true;
    maybe_begin_handshake(beacon.origin);
    return;
  }

  // Find our own tag: it authenticates the beacon and the adjacency claim.
  const auto auth = StsBeacon::auth_bytes(beacon.origin, beacon.seq, beacon.pos,
                                          beacon.neighbors);
  bool verified = false;
  for (std::size_t i = 0; i < beacon.neighbors.size() && i < beacon.tags.size(); ++i) {
    if (beacon.neighbors[i] == node_.id()) {
      verified = crypto::digest_equal(beacon.tags[i],
                                      crypto::hmac_sha256(peer.key, std::span{auth}));
      break;
    }
  }
  if (!verified) {
    // Authenticated peer but no valid tag for us: either it has not yet seen
    // our first post-handshake beacon (benign race), the handshake completed
    // only on our side (lost message 3), or the beacon is forged. Keep the
    // link but do not refresh it from this beacon; once the link has gone
    // stale, restart authentication from scratch.
    node_.stats().add("sts.beacons_unverified");
    if (now() - peer.last_heard > params_.delta_sts) {
      peer.authenticated = false;
      peer.handshake.reset();
      maybe_begin_handshake(beacon.origin);
    }
    return;
  }
  peer.last_heard = now();
  peer.pos = beacon.pos;
  peer.pos_known = true;
  peer.claimed_neighbors = beacon.neighbors;
  peer.claim_time = now();
  node_.stats().add("sts.beacons_accepted");
}

void SecureTopologyService::maybe_begin_handshake(sim::NodeId peer_id) {
  PeerState& peer = peers_[peer_id];
  if (peer.authenticated) return;
  // Lower id initiates, so exactly one handshake runs per pair.
  if (node_.id() >= peer_id) return;
  const sim::Time t = now();
  if (peer.handshake && t - peer.handshake_started < params_.handshake_retry) return;
  peer.handshake = crypto::NslSession::initiate(node_.id(), peer_id, fresh_nonce());
  peer.handshake_started = t;
  send_nsl(peer_id, 1, peer.handshake->message1(cipher_));
}

void SecureTopologyService::send_nsl(sim::NodeId to, int phase, crypto::Ciphertext ct) {
  auto msg = std::make_shared<NslMsg>();
  msg->phase = phase;
  msg->ct = std::move(ct);

  sim::Packet packet;
  packet.src = node_.id();
  packet.dst = to;
  packet.port = sim::Port::kSts;
  packet.size_bytes = static_cast<std::uint32_t>(12 + msg->ct.data.size() + 36);
  packet.body = std::move(msg);
  node_.transport().send_unfiltered(std::move(packet), to);
  node_.stats().add("sts.nsl_sent");
}

void SecureTopologyService::handle_nsl(const NslMsg& msg, sim::NodeId from) {
  const sim::Time t = now();
  switch (msg.phase) {
    case 1: {
      auto session = crypto::NslSession::respond(node_.id(), msg.ct, fresh_nonce(), cipher_);
      if (!session || session->peer() != from) return;
      PeerState& peer = peers_[from];
      // Accept a fresh message 1 even when already authenticated: the
      // initiator restarts the handshake when its side of the link expired
      // (e.g., our message 3 was lost). The existing session key stays
      // valid until the new handshake completes.
      peer.handshake = std::move(*session);
      peer.handshake_started = t;
      send_nsl(from, 2, peer.handshake->message2(cipher_));
      break;
    }
    case 2: {
      const auto it = peers_.find(from);
      if (it == peers_.end() || !it->second.handshake) return;
      PeerState& peer = it->second;
      const auto msg3 = peer.handshake->on_message2(msg.ct, cipher_);
      if (!msg3) return;
      send_nsl(from, 3, *msg3);
      peer.authenticated = true;
      peer.key = peer.handshake->session_key();
      peer.last_heard = t;  // the handshake itself is authenticated contact
      peer.handshake.reset();
      node_.stats().add("sts.handshakes_completed");
      break;
    }
    case 3: {
      const auto it = peers_.find(from);
      if (it == peers_.end() || !it->second.handshake) return;
      PeerState& peer = it->second;
      if (!peer.handshake->on_message3(msg.ct, cipher_)) return;
      peer.authenticated = true;
      peer.key = peer.handshake->session_key();
      peer.last_heard = t;
      peer.handshake.reset();
      node_.stats().add("sts.handshakes_completed");
      break;
    }
    default:
      break;
  }
}

}  // namespace icc::core
