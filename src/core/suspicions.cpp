#include "core/suspicions.hpp"

namespace icc::core {

void SuspicionsManager::suspect_temporarily(sim::NodeId id, sim::Time now,
                                            const std::string& reason) {
  auto [it, inserted] = temporary_.try_emplace(id, TempEntry{now + temporary_duration_, reason});
  if (!inserted && it->second.until < now + temporary_duration_) {
    it->second = TempEntry{now + temporary_duration_, reason};
  }
  if (escalation_.strike_threshold <= 0 || convicted_.count(id) != 0) return;
  std::vector<sim::Time>& strikes = strikes_[id];
  std::erase_if(strikes, [&](sim::Time t) { return now - t > escalation_.strike_window; });
  strikes.push_back(now);
  int threshold = escalation_.strike_threshold;
  if (escalation_.convict_partners && escalated_convictions_ > 0) {
    threshold = (threshold + 1) / 2;
  }
  if (static_cast<int>(strikes.size()) >= threshold) {
    ++escalated_convictions_;
    convict(id, "escalated: " + reason);
    strikes_.erase(id);
  }
}

void SuspicionsManager::convict(sim::NodeId id, const std::string& evidence) {
  convicted_.try_emplace(id, evidence);
}

bool SuspicionsManager::suspected(sim::NodeId id, sim::Time now) const {
  if (convicted_.count(id) != 0) return true;
  const auto it = temporary_.find(id);
  return it != temporary_.end() && it->second.until > now;
}

bool SuspicionsManager::convicted(sim::NodeId id) const { return convicted_.count(id) != 0; }

std::vector<sim::NodeId> SuspicionsManager::suspects(sim::Time now) const {
  std::vector<sim::NodeId> out;
  out.reserve(convicted_.size() + temporary_.size());
  for (const auto& [id, _] : convicted_) out.push_back(id);
  for (const auto& [id, entry] : temporary_) {
    if (entry.until > now && convicted_.count(id) == 0) out.push_back(id);
  }
  return out;
}

}  // namespace icc::core
