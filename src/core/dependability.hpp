// Dependability-level calculus (§4.2).
//
// A center with N-node inner circle (center included) tolerating F node
// failures — F_B Byzantine, F_C crash, F_L broken-link — chooses
// L = N - F - 1, which guarantees T = L - F_B non-Byzantine approvals in
// every completing round (Agreement), lets remote recipients rely on
// verifying messages (Integrity), and keeps rounds startable (Termination).
// Fixing L + 1 = 2N/3 and ignoring F_C, F_L recovers classical Byzantine
// agreement: tolerance of N/3 - 1 Byzantine nodes with a correct majority
// behind every agreed value.
#pragma once

#include <algorithm>
#include <optional>

namespace icc::core {

/// Failure budget a center wants to tolerate in one round.
struct FailureBudget {
  int byzantine{0};  ///< F_B
  int crash{0};      ///< F_C
  int link{0};       ///< F_L
  [[nodiscard]] constexpr int total() const noexcept { return byzantine + crash + link; }
};

/// L = N - F - 1 (§4.2). Returns nullopt when the circle is too small to
/// tolerate the budget at any usable level (L >= 1 requires N >= F + 2).
[[nodiscard]] constexpr std::optional<int> dependability_level(int circle_size,
                                                               FailureBudget budget) {
  const int level = circle_size - budget.total() - 1;
  if (level < 1) return std::nullopt;
  return level;
}

/// Guaranteed number of non-Byzantine participants behind a completing
/// round: T = L - F_B.
[[nodiscard]] constexpr int guaranteed_correct(int level, FailureBudget budget) {
  return level - budget.byzantine;
}

/// The classical-Byzantine-agreement special case: L + 1 = ceil(2N/3),
/// which tolerates up to N/3 - 1 Byzantine nodes with a correct majority.
[[nodiscard]] constexpr int byzantine_agreement_level(int circle_size) {
  return (2 * circle_size + 2) / 3 - 1;  // ceil(2N/3) - 1
}

/// Maximum Byzantine nodes tolerable at a given (N, L) while keeping
/// T >= 1 — the §5.1 condition under which only valid routes are
/// established.
[[nodiscard]] constexpr int max_byzantine_for_route_validity(int level) {
  return std::max(level - 1, 0);
}

}  // namespace icc::core
