// Payload types exchanged by the inner-circle services (STS + IVS), plus the
// canonical byte strings they sign.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wire.hpp"
#include "crypto/ns_lowe.hpp"
#include "crypto/scheme.hpp"
#include "crypto/sha256.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "sim/vec2.hpp"

namespace icc::core {

/// Application value carried through voting: opaque bytes, serialized and
/// interpreted by the Inner-circle Callbacks.
using Value = std::vector<std::uint8_t>;

/// Which IVS algorithm a round runs (Fig 3).
enum class VotingMode : std::uint8_t { kDeterministic = 0, kStatistical = 1 };

// --------------------------------------------------------------------- STS

/// Periodic Secure Topology Service beacon. `neighbors[i]` is a neighbor the
/// origin has authenticated (via NS-Lowe); `tags[i]` is
/// HMAC(session(origin, neighbors[i]), auth_bytes(...)) so that each listed
/// neighbor can verify the beacon really comes from origin and that the
/// adjacency claim is mutual.
struct StsBeacon final : sim::PayloadBase<StsBeacon> {
  static constexpr const char* kTag = "sts.beacon";
  sim::NodeId origin{sim::kNoNode};
  std::uint64_t seq{0};
  sim::Vec2 pos;
  std::vector<sim::NodeId> neighbors;
  std::vector<crypto::Digest> tags;

  /// The beacon content covered by each per-neighbor tag.
  [[nodiscard]] static std::vector<std::uint8_t> auth_bytes(
      sim::NodeId origin, std::uint64_t seq, sim::Vec2 pos,
      const std::vector<sim::NodeId>& neighbors) {
    WireWriter w;
    w.u32(origin);
    w.u64(seq);
    w.f64(pos.x);
    w.f64(pos.y);
    w.u32(static_cast<std::uint32_t>(neighbors.size()));
    for (const sim::NodeId n : neighbors) w.u32(n);
    return std::move(w).take();
  }
};

/// NS-Lowe handshake transport (phases 1-3), unicast between neighbors.
struct NslMsg final : sim::PayloadBase<NslMsg> {
  // Tag is per-type now; the handshake phase rides in the `phase` field
  // (the old dynamic "sts.nsl<phase>" string had no readers).
  static constexpr const char* kTag = "sts.nsl";
  int phase{0};
  crypto::Ciphertext ct;
};

// --------------------------------------------------------------------- IVS

/// Statistical voting, step 1: the center solicits values (Fig 3b). `topic`
/// carries the center's own observation / round context for getVal.
struct SolicitMsg final : sim::PayloadBase<SolicitMsg> {
  static constexpr const char* kTag = "ivs.solicit";
  sim::NodeId center{sim::kNoNode};
  std::uint64_t round{0};
  int level{1};
  int ttl{1};  ///< remaining relay hops (2 for two-hop inner circles, §3)
  Value topic;
};

/// Statistical voting, step 2: a participant's observation, individually
/// signed so it can be forwarded as evidence inside the propose message.
struct ValueMsg final : sim::PayloadBase<ValueMsg> {
  static constexpr const char* kTag = "ivs.value";
  sim::NodeId sender{sim::kNoNode};
  sim::NodeId center{sim::kNoNode};  ///< routing target (relayed in 2-hop circles)
  std::uint64_t round{0};
  Value value;
  std::vector<std::uint8_t> sig;  ///< PKI signature over value_bytes(...)
  [[nodiscard]] static std::vector<std::uint8_t> value_bytes(sim::NodeId center,
                                                             std::uint64_t round,
                                                             sim::NodeId sender,
                                                             const Value& value) {
    WireWriter w;
    w.u32(center);
    w.u64(round);
    w.u32(sender);
    w.bytes(value);
    return std::move(w).take();
  }
};

/// Voting propose: deterministic rounds open with it; statistical rounds use
/// it to distribute the fused value plus the evidence it was fused from.
struct ProposeMsg final : sim::PayloadBase<ProposeMsg> {
  static constexpr const char* kTag = "ivs.propose";
  sim::NodeId center{sim::kNoNode};
  std::uint64_t round{0};
  int level{1};
  int ttl{1};  ///< remaining relay hops (2 for two-hop inner circles, §3)
  VotingMode mode{VotingMode::kDeterministic};
  Value value;
  std::vector<ValueMsg> evidence;      ///< statistical only; includes center's own
  std::vector<std::uint8_t> center_sig;  ///< PKI signature (conviction evidence)
  [[nodiscard]] static std::vector<std::uint8_t> propose_bytes(sim::NodeId center,
                                                               std::uint64_t round, int level,
                                                               VotingMode mode,
                                                               const Value& value) {
    WireWriter w;
    w.u32(center);
    w.u64(round);
    w.u32(static_cast<std::uint32_t>(level));
    w.u8(static_cast<std::uint8_t>(mode));
    w.bytes(value);
    return std::move(w).take();
  }
};

/// A participant's approval: its partial threshold signature over the agreed
/// content.
struct AckMsg final : sim::PayloadBase<AckMsg> {
  static constexpr const char* kTag = "ivs.ack";
  sim::NodeId sender{sim::kNoNode};
  sim::NodeId center{sim::kNoNode};  ///< routing target (relayed in 2-hop circles)
  std::uint64_t round{0};
  crypto::PartialSig psig;
};

/// The self-checking output of a completed round (§3): value + combined
/// threshold signature. Broadcast to the circle and embeddable (serialized)
/// in any application message for multi-hop propagation.
struct AgreedMsg final : sim::PayloadBase<AgreedMsg> {
  static constexpr const char* kTag = "ivs.agreed";
  sim::NodeId source{sim::kNoNode};
  std::uint64_t round{0};
  int level{1};
  int ttl{1};  ///< transient relay budget; NOT part of the signed content
  Value value;
  crypto::ThresholdSignature sig;
  /// The bytes covered by the threshold signature.
  [[nodiscard]] static std::vector<std::uint8_t> signed_bytes(sim::NodeId source,
                                                              std::uint64_t round, int level,
                                                              const Value& value) {
    WireWriter w;
    w.u32(source);
    w.u64(round);
    w.u32(static_cast<std::uint32_t>(level));
    w.bytes(value);
    return std::move(w).take();
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const {
    WireWriter w;
    w.u32(source);
    w.u64(round);
    w.u32(static_cast<std::uint32_t>(level));
    w.bytes(value);
    w.u32(static_cast<std::uint32_t>(sig.level));
    w.bytes(sig.data);
    return std::move(w).take();
  }

  [[nodiscard]] static std::optional<AgreedMsg> deserialize(
      std::span<const std::uint8_t> bytes) {
    WireReader r{bytes};
    AgreedMsg m;
    const auto source = r.u32();
    const auto round = r.u64();
    const auto level = r.u32();
    auto value = r.bytes();
    const auto sig_level = r.u32();
    auto sig_data = r.bytes();
    if (!source || !round || !level || !value || !sig_level || !sig_data) return std::nullopt;
    m.source = *source;
    m.round = *round;
    m.level = static_cast<int>(*level);
    m.value = std::move(*value);
    m.sig.level = static_cast<int>(*sig_level);
    m.sig.data = std::move(*sig_data);
    return m;
  }

  /// Modeled on-air size.
  [[nodiscard]] std::uint32_t wire_size() const {
    return static_cast<std::uint32_t>(20 + value.size() + sig.data.size());
  }
};

}  // namespace icc::core
