// Inner-circle Callbacks (§4, component 5): the application-provided hooks
// that customize the voting service, mirroring the paper's callback set
// (check, getVal, fuseVal, onAgr, ...). They are plain std::functions so an
// application configures them at runtime — the shared-library / TinyOS-
// component embodiment of Fig 2 collapses to function objects here.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/messages.hpp"
#include "sim/types.hpp"

namespace icc::core {

struct Callbacks {
  /// Deterministic voting `check`: does `value`, proposed by `center`,
  /// satisfy the application-specific validity criterion?
  std::function<bool(sim::NodeId center, const Value& value)> check;

  /// Statistical voting `getVal`: this node's own observation corresponding
  /// to the solicited `topic`; nullopt when the node has nothing to
  /// contribute (it then simply does not reply).
  std::function<std::optional<Value>(sim::NodeId center, const Value& topic)> get_value;

  /// Statistical voting `fuseVal`: fault-tolerant fusion of the collected
  /// observations (sorted by sender id; includes the center's own). Must be
  /// deterministic — participants recompute it to validate the proposal.
  std::function<Value(const std::vector<std::pair<sim::NodeId, Value>>& values)> fuse;

  /// `onAgr`: a round completed; fires on the center (is_center == true,
  /// decide where to forward the agreed message) and on every participant
  /// that observes the agreed broadcast (update local state, e.g. the
  /// AODV forwarding map of Fig 6).
  std::function<void(const AgreedMsg& msg, bool is_center)> on_agreed;

  /// Center only: the round timed out or was locally rejected.
  std::function<void(std::uint64_t round, const Value& value)> on_abort;
};

/// Execution cost of cryptographic operations, charged to the simulated
/// node. The two presets model the paper's dedicated Crypto-Processor /
/// FT-Cluster-Processor hardware versus a software implementation ("up to
/// two orders of magnitude less energy", §4).
struct CryptoCostModel {
  sim::Time sign_delay{0.5e-3};
  sim::Time verify_delay{0.2e-3};
  sim::Time combine_delay{1.0e-3};
  double energy_per_op_j{0.5e-3};

  static CryptoCostModel hardware() { return {}; }
  static CryptoCostModel software() {
    return CryptoCostModel{25e-3, 1.5e-3, 50e-3, 50e-3};
  }
};

}  // namespace icc::core
