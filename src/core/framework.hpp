// The inner-circle consistency node architecture (§4, Fig 1): composes the
// Secure Topology Service, Inner-circle Voting Service, Suspicions Manager,
// and the Inner-circle Interceptor on top of a simulated wireless node.
//
// Applications attach to it by (1) configuring dependability level L and the
// voting mode, (2) registering message templates describing which of their
// messages must be checked (outgoing templates are redirected to voting,
// matching raw incoming messages are suppressed), and (3) supplying the
// Inner-circle Callbacks.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/callbacks.hpp"
#include "core/messages.hpp"
#include "core/suspicions.hpp"
#include "core/topology.hpp"
#include "core/voting.hpp"
#include "crypto/ns_lowe.hpp"
#include "crypto/pki.hpp"
#include "crypto/scheme.hpp"
#include "net/host.hpp"

namespace icc::core {

struct InnerCircleConfig {
  int level{1};                                       ///< dependability level L
  VotingMode mode{VotingMode::kDeterministic};
  /// Inner-circle radius in hops: 1 = the paper's default; 2 = the §3
  /// "larger inner-circle" extension (relayed rounds, bigger N, larger
  /// tolerable F at the cost of more round traffic).
  int circle_hops{1};
  SecureTopologyService::Params sts{};
  IvsService::Params ivs{};
  sim::Time suspicion_duration{120.0};
};

// icc:affinity(node)
class InnerCircleNode {
 public:
  /// Matches a packet the application wants checked; `next_hop` is the
  /// link-layer destination the application chose.
  using Matcher = std::function<bool(const sim::Packet& packet, sim::NodeId next_hop)>;
  /// Serializes a matched outgoing packet into the Value submitted to voting.
  using Extractor = std::function<Value(const sim::Packet& packet, sim::NodeId next_hop)>;
  /// Matches incoming packets that must only ever arrive as agreed messages.
  using IncomingMatcher = std::function<bool(const sim::Packet& packet)>;

  InnerCircleNode(net::Host& node, InnerCircleConfig config,
                  crypto::ThresholdScheme& scheme, crypto::Pki& pki,
                  const crypto::AsymmetricCipher& cipher);

  /// Begin STS beaconing. Call once after all registration is done.
  void start();

  /// Outgoing interception: matching packets are consumed and submitted to
  /// an inner-circle voting round at the configured mode/level.
  void intercept_outgoing(Matcher match, Extractor extract);

  /// Incoming suppression: matching raw packets are dropped — their content
  /// is only accepted when it arrives inside a valid agreed message.
  void suppress_incoming(IncomingMatcher match);

  /// Directly start a voting round (applications that do not go through the
  /// packet filter, e.g. sensor apps voting on local readings).
  std::uint64_t initiate(Value value) {
    return ivs_.initiate(config_.mode, config_.level, std::move(value));
  }
  std::uint64_t initiate(VotingMode mode, int level, Value value) {
    return ivs_.initiate(mode, level, std::move(value));
  }

  /// Remote-recipient helper: parse + verify an embedded agreed message.
  [[nodiscard]] std::optional<AgreedMsg> verify_agreed_bytes(
      std::span<const std::uint8_t> bytes) const;

  Callbacks& callbacks() noexcept { return callbacks_; }
  SecureTopologyService& sts() noexcept { return sts_; }
  IvsService& ivs() noexcept { return ivs_; }
  SuspicionsManager& suspicions() noexcept { return suspicions_; }
  [[nodiscard]] const InnerCircleConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::Host& node() noexcept { return node_; }

 private:
  struct InterceptRule {
    Matcher match;
    Extractor extract;
  };

  net::FilterVerdict filter_outbound(const sim::Packet& packet, sim::NodeId next_hop);
  net::FilterVerdict filter_inbound(const sim::Packet& packet, sim::NodeId from);

  net::Host& node_;
  InnerCircleConfig config_;
  Callbacks callbacks_;
  SuspicionsManager suspicions_;
  SecureTopologyService sts_;
  IvsService ivs_;
  std::vector<InterceptRule> outgoing_rules_;
  std::vector<IncomingMatcher> incoming_rules_;
};

}  // namespace icc::core
