#include "exp/journal.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace icc::exp {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Cursor over one journal line. Every eat_* advances on success only.
struct Cursor {
  const std::string& s;
  std::size_t pos{0};

  bool eat(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (s.compare(pos, n, literal) != 0) return false;
    pos += n;
    return true;
  }

  /// JSON string with \" and \\ escapes, starting at an opening quote.
  bool eat_string(std::string& out) {
    if (pos >= s.size() || s[pos] != '"') return false;
    out.clear();
    for (std::size_t i = pos + 1; i < s.size(); ++i) {
      if (s[i] == '\\' && i + 1 < s.size()) {
        out.push_back(s[++i]);
      } else if (s[i] == '"') {
        pos = i + 1;
        return true;
      } else {
        out.push_back(s[i]);
      }
    }
    return false;
  }

  bool eat_u64(std::uint64_t& out) {
    if (pos >= s.size() || std::isdigit(static_cast<unsigned char>(s[pos])) == 0) {
      return false;
    }
    errno = 0;
    char* end = nullptr;
    out = std::strtoull(s.c_str() + pos, &end, 10);
    if (errno != 0 || end == s.c_str() + pos) return false;
    pos = static_cast<std::size_t>(end - s.c_str());
    return true;
  }

  bool eat_double(double& out) {
    errno = 0;
    char* end = nullptr;
    out = std::strtod(s.c_str() + pos, &end);
    if (errno != 0 || end == s.c_str() + pos) return false;
    pos = static_cast<std::size_t>(end - s.c_str());
    return true;
  }
};

}  // namespace

std::string format_journal_line(const JournalEntry& entry) {
  std::string out = "{\"campaign\":\"";
  append_escaped(out, entry.campaign);
  out += "\",\"base_seed\":" + std::to_string(entry.base_seed);
  out += ",\"cell\":" + std::to_string(entry.cell);
  out += ",\"run\":" + std::to_string(entry.run);
  out += ",\"outputs\":{";
  bool first_metric = true;
  for (const auto& [metric, samples] : entry.outputs) {
    if (!first_metric) out.push_back(',');
    first_metric = false;
    out.push_back('"');
    append_escaped(out, metric);
    out += "\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) out.push_back(',');
      append_double(out, samples[i]);
    }
    out.push_back(']');
  }
  out += "}}";
  return out;
}

std::optional<JournalEntry> parse_journal_line(const std::string& line) {
  Cursor c{line};
  JournalEntry entry;
  std::uint64_t cell = 0;
  std::uint64_t run = 0;
  if (!c.eat("{\"campaign\":") || !c.eat_string(entry.campaign)) return std::nullopt;
  if (!c.eat(",\"base_seed\":") || !c.eat_u64(entry.base_seed)) return std::nullopt;
  if (!c.eat(",\"cell\":") || !c.eat_u64(cell)) return std::nullopt;
  if (!c.eat(",\"run\":") || !c.eat_u64(run)) return std::nullopt;
  if (!c.eat(",\"outputs\":{")) return std::nullopt;
  entry.cell = static_cast<std::size_t>(cell);
  entry.run = static_cast<int>(run);
  if (!c.eat("}")) {  // non-empty outputs object
    while (true) {
      std::string metric;
      if (!c.eat_string(metric) || !c.eat(":[")) return std::nullopt;
      std::vector<double>& samples = entry.outputs[metric];
      if (!c.eat("]")) {  // non-empty sample array
        while (true) {
          double v = 0.0;
          if (!c.eat_double(v)) return std::nullopt;
          samples.push_back(v);
          if (c.eat("]")) break;
          if (!c.eat(",")) return std::nullopt;
        }
      }
      if (c.eat("}")) break;
      if (!c.eat(",")) return std::nullopt;
    }
  }
  if (!c.eat("}") || c.pos != line.size()) return std::nullopt;
  return entry;
}

}  // namespace icc::exp
