#include "exp/runner.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/env.hpp"
#include "exp/journal.hpp"
#include "sim/check.hpp"

namespace icc::exp {

namespace {

// detlint:allow(wall-clock): drives throughput/ETA reporting only; never feeds job seeds or outputs
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Replay a journal into the output slots. Returns the number of resumed
/// jobs. Entries for another campaign/base_seed, out-of-range coordinates,
/// or malformed lines (e.g. the torn last line of a killed run) are skipped.
std::size_t load_journal(const std::string& path, const Campaign& campaign,
                         std::vector<JobOutputs>& outputs, std::vector<char>& have) {
  std::ifstream in{path};
  if (!in) return 0;
  std::size_t resumed = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::optional<JournalEntry> entry = parse_journal_line(line);
    if (!entry || entry->campaign != campaign.name ||
        entry->base_seed != campaign.base_seed) {
      continue;
    }
    if (entry->cell >= campaign.grid.num_cells() || entry->run < 0 ||
        entry->run >= campaign.runs) {
      continue;
    }
    const std::size_t id = entry->cell * static_cast<std::size_t>(campaign.runs) +
                           static_cast<std::size_t>(entry->run);
    if (have[id] != 0) continue;  // duplicate line: first wins
    outputs[id] = entry->outputs;
    have[id] = 1;
    ++resumed;
  }
  return resumed;
}

/// True when `path` is absent, empty, or ends in '\n'. A file that does not
/// is a journal whose writer was killed mid-line; the torn fragment must be
/// newline-terminated before appending, or the next entry would concatenate
/// onto it and both records would be lost.
bool ends_with_newline(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in || in.tellg() <= 0) return true;
  in.seekg(-1, std::ios::end);
  char last = '\0';
  in.get(last);
  return last == '\n';
}

/// Serialized progress/journal state shared by the workers.
class ProgressSink {
 public:
  ProgressSink(const Campaign& campaign, std::size_t resumed, std::size_t pending,
               std::ofstream* journal, bool progress)
      : campaign_{campaign},
        resumed_{resumed},
        pending_{pending},
        journal_{journal},
        progress_{progress},
        tty_{isatty(fileno(stderr)) != 0},
        start_{Clock::now()} {}

  /// Record one finished job: journal it, then maybe print a progress line.
  void complete(std::size_t cell, int run, const JobOutputs& outputs) {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (journal_ != nullptr && *journal_) {
      JournalEntry entry;
      entry.campaign = campaign_.name;
      entry.base_seed = campaign_.base_seed;
      entry.cell = cell;
      entry.run = run;
      entry.outputs = outputs;
      *journal_ << format_journal_line(entry) << '\n';
      journal_->flush();  // each line is a durable checkpoint
    }
    ++done_;
    if (!progress_) return;
    const double elapsed = seconds_since(start_);
    const bool last = done_ == pending_;
    // Throttle: a tty gets an in-place line ~5x/s, a pipe a line every ~2 s.
    if (!last && elapsed - last_print_ < (tty_ ? 0.2 : 2.0)) return;
    last_print_ = elapsed;
    const double rate = elapsed > 0.0 ? static_cast<double>(done_) / elapsed : 0.0;
    const double eta =
        rate > 0.0 ? static_cast<double>(pending_ - done_) / rate : 0.0;
    std::fprintf(stderr, "%scampaign %s: %zu/%zu jobs (%.1f jobs/s, ETA %.0fs)%s",
                 tty_ ? "\r" : "", campaign_.name.c_str(), done_ + resumed_,
                 pending_ + resumed_, rate, eta, (tty_ && !last) ? "" : "\n");
    std::fflush(stderr);
  }

  [[nodiscard]] std::size_t done() const { return done_; }
  [[nodiscard]] double elapsed_s() const { return seconds_since(start_); }

 private:
  const Campaign& campaign_;
  const std::size_t resumed_;
  const std::size_t pending_;
  std::ofstream* journal_;
  const bool progress_;
  const bool tty_;
  const Clock::time_point start_;
  std::mutex mutex_;
  std::size_t done_{0};
  double last_print_{0.0};
};

}  // namespace

CampaignResult run_campaign(const Campaign& campaign, const RunnerOptions& options) {
  if (!campaign.job) throw std::invalid_argument("run_campaign: campaign.job is empty");
  if (campaign.runs < 1) throw std::invalid_argument("run_campaign: runs must be >= 1");

  const std::size_t total = campaign.num_jobs();
  std::vector<JobOutputs> outputs(total);
  std::vector<char> have(total, 0);

#if ICC_CHECKED_ENABLED
  // Statistical soundness: jobs must draw independent streams wherever the
  // design promises independence. Under common random numbers cells share
  // seeds on purpose (paired comparisons), so uniqueness is required only
  // across runs; otherwise across every (cell, run) job.
  {
    std::set<std::uint64_t> seeds;
    const std::size_t cells_checked =
        campaign.common_random_numbers ? 1 : campaign.grid.num_cells();
    for (std::size_t cell = 0; cell < cells_checked; ++cell) {
      for (int run = 0; run < campaign.runs; ++run) {
        ICC_CHECK(seeds.insert(campaign.job_seed(cell, run)).second,
                  "two campaign jobs derived the same seed: their runs would be correlated");
      }
    }
  }
#endif

  const std::string journal_path = options.journal_path_set
                                       ? options.journal_path
                                       : env_string("ICC_CAMPAIGN_JOURNAL");
  std::size_t resumed = 0;
  if (!journal_path.empty()) {
    resumed = load_journal(journal_path, campaign, outputs, have);
  }

  // Flattened job list, minus resumed jobs; workers claim entries with an
  // atomic cursor (self-scheduling work stealing over a shared deque).
  std::vector<std::size_t> pending;
  pending.reserve(total - resumed);
  for (std::size_t id = 0; id < total; ++id) {
    if (have[id] == 0) pending.push_back(id);
  }

  std::ofstream journal;
  if (!journal_path.empty() && !pending.empty()) {
    const bool repair = !ends_with_newline(journal_path);
    journal.open(journal_path, std::ios::app);
    if (!journal) {
      std::fprintf(stderr, "campaign %s: cannot open journal '%s'; checkpoints off\n",
                   campaign.name.c_str(), journal_path.c_str());
    } else if (repair) {
      journal << '\n';  // seal the torn line of a killed predecessor
    }
  }

  int threads = options.threads > 0 ? options.threads : env_runner_threads(1);
  if (threads < 1) threads = 1;
  if (static_cast<std::size_t>(threads) > pending.size() && !pending.empty()) {
    threads = static_cast<int>(pending.size());
  }

  ProgressSink sink{campaign, resumed, pending.size(),
                    journal.is_open() ? &journal : nullptr, options.progress};
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::string first_error;

  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < pending.size(); i = next.fetch_add(1)) {
      const std::size_t id = pending[i];
      const std::size_t cell = id / static_cast<std::size_t>(campaign.runs);
      const int run = static_cast<int>(id % static_cast<std::size_t>(campaign.runs));
      JobContext ctx;
      ctx.cell = cell;
      ctx.run = run;
      ctx.seed = campaign.job_seed(cell, run);
      try {
        outputs[id] = campaign.job(ctx);
      } catch (const std::exception& e) {
        const std::lock_guard<std::mutex> lock{error_mutex};
        if (first_error.empty()) first_error = e.what();
        next.store(pending.size());  // abandon the remaining jobs
        return;
      }
      sink.complete(cell, run, outputs[id]);
    }
  };

  if (!pending.empty()) {
    if (threads == 1) {
      worker();  // inline: no pool overhead for serial campaigns
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }
  }
  if (!first_error.empty()) {
    throw std::runtime_error("campaign " + campaign.name + ": job failed: " + first_error);
  }

  CampaignResult result = aggregate_outputs(campaign, outputs);
  result.jobs_executed = sink.done();
  result.jobs_resumed = resumed;
  result.elapsed_s = sink.elapsed_s();
  result.jobs_per_s = result.elapsed_s > 0.0
                          ? static_cast<double>(result.jobs_executed) / result.elapsed_s
                          : 0.0;
  return result;
}

}  // namespace icc::exp
