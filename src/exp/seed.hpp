// Deterministic per-job seed derivation for experiment campaigns.
//
// Every (cell, run) job of a campaign draws its world seed from a
// SplitMix64-style hash of (base_seed, cell index, run index), so the seed
// assignment is a pure function of the campaign description: it does not
// depend on thread count, scheduling order, or how many jobs were resumed
// from a checkpoint. This is what makes a parallel campaign byte-identical
// to a serial one.
#pragma once

#include <cstdint>

namespace icc::exp {

/// SplitMix64 finalizer (Steele, Lea & Flood; same mixing constants as
/// sim::Rng::fork). Bijective on 64-bit values, so distinct inputs never
/// collide after a single application.
constexpr std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Seed for job (cell, run) of a campaign with the given base seed.
///
/// Each coordinate is folded in through its own SplitMix64 round (with the
/// golden-ratio increment keeping consecutive indices far apart), so jobs
/// that differ in any coordinate get statistically independent streams and
/// the same coordinates always reproduce the same stream.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell,
                                    std::uint64_t run) noexcept {
  std::uint64_t z = splitmix64(base_seed);
  z = splitmix64(z ^ (0x9E3779B97F4A7C15ull * (cell + 1)));
  z = splitmix64(z ^ (0xC2B2AE3D27D4EB4Full * (run + 1)));
  return z;
}

}  // namespace icc::exp
