#include "exp/campaign.hpp"

#include <cctype>
#include <stdexcept>

#include "sim/report.hpp"

namespace icc::exp {

std::string report_key(const std::string& label) {
  std::string out;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

ParamGrid& ParamGrid::axis(std::string name, std::vector<std::string> labels,
                           std::vector<std::string> keys) {
  if (keys.empty()) {
    keys.reserve(labels.size());
    for (const std::string& label : labels) keys.push_back(report_key(label));
  }
  if (keys.size() != labels.size()) {
    throw std::invalid_argument("ParamGrid axis '" + name + "': keys/labels size mismatch");
  }
  axes_.push_back(Axis{std::move(name), std::move(labels), std::move(keys)});
  return *this;
}

std::size_t ParamGrid::num_cells() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.labels.size();
  return n;
}

std::size_t ParamGrid::level(std::size_t cell, std::size_t axis) const {
  // Row-major, first axis slowest: divide away every axis after `axis`.
  std::size_t stride = 1;
  for (std::size_t i = axes_.size(); i-- > axis + 1;) stride *= axes_[i].labels.size();
  return (cell / stride) % axes_[axis].labels.size();
}

std::size_t ParamGrid::cell_index(const std::vector<std::size_t>& levels) const {
  if (levels.size() != axes_.size()) {
    throw std::invalid_argument("ParamGrid::cell_index: wrong number of levels");
  }
  std::size_t cell = 0;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    cell = cell * axes_[i].labels.size() + levels[i];
  }
  return cell;
}

std::string ParamGrid::key(std::size_t cell) const {
  std::string out;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += axes_[i].keys[level(cell, i)];
  }
  return out;
}

std::string ParamGrid::label(std::size_t cell) const {
  std::string out;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += axes_[i].labels[level(cell, i)];
  }
  return out;
}

const sim::SampleSeries& CampaignResult::series(std::size_t cell,
                                                const std::string& metric) const {
  static const sim::SampleSeries kEmpty{};
  if (cell >= cells_.size()) return kEmpty;
  const auto it = cells_[cell].find(metric);
  return it != cells_[cell].end() ? it->second : kEmpty;
}

void CampaignResult::add_to_report(sim::RunReport& report) const {
  for (std::size_t cell = 0; cell < cells_.size(); ++cell) {
    for (const auto& [metric, series] : cells_[cell]) {
      report.add_series(metric + "." + cell_keys_[cell], series);
    }
  }
}

CampaignResult aggregate_outputs(const Campaign& campaign,
                                 const std::vector<JobOutputs>& outputs) {
  const std::size_t num_cells = campaign.grid.num_cells();
  CampaignResult result;
  result.jobs_total = campaign.num_jobs();
  result.cells_.resize(num_cells);
  result.cell_keys_.reserve(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    result.cell_keys_.push_back(campaign.grid.key(cell));
    for (int run = 0; run < campaign.runs; ++run) {
      const std::size_t id = cell * static_cast<std::size_t>(campaign.runs) +
                             static_cast<std::size_t>(run);
      if (id >= outputs.size()) continue;
      for (const auto& [metric, samples] : outputs[id]) {
        sim::SampleSeries& series = result.cells_[cell][metric];
        for (const double v : samples) series.add(v);
      }
    }
  }
  return result;
}

}  // namespace icc::exp
