// JSONL checkpoint journal for campaign runs.
//
// Each completed job appends one line:
//   {"campaign":"fig7_blackhole","base_seed":1000,"cell":3,"run":2,
//    "outputs":{"energy_j":[20.93...],"throughput":[0.984...]}}
// On startup the runner replays the journal and skips every job whose
// (campaign, base_seed, cell, run) matches, so an interrupted campaign
// resumes without recomputing. Doubles are written with %.17g, which
// round-trips IEEE-754 exactly — a resumed campaign aggregates to the same
// bits as an uninterrupted one. Lines that fail to parse (e.g. a partial
// write from a killed process) or that belong to a different campaign are
// ignored; the job is simply recomputed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "exp/campaign.hpp"

namespace icc::exp {

struct JournalEntry {
  std::string campaign;
  std::uint64_t base_seed{0};
  std::size_t cell{0};
  int run{0};
  JobOutputs outputs;
};

/// One line of JSONL, without the trailing newline.
std::string format_journal_line(const JournalEntry& entry);

/// Strict parser for lines this module wrote; nullopt on any malformation.
std::optional<JournalEntry> parse_journal_line(const std::string& line);

}  // namespace icc::exp
