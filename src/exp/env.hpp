// Shared environment-variable knobs for benches and the campaign runner.
//
// Every bench used to carry its own copy of these helpers; they live here
// once so the knob set (ICC_RUNS, ICC_SIM_TIME, ICC_THREADS, ICC_JSON,
// ICC_CAMPAIGN_JOURNAL, ...) is parsed uniformly.
//
// Parsing is strict: a malformed value (ICC_THREADS=1O, ICC_SIM_TIME=3OO.0)
// aborts with a message naming the variable instead of silently truncating
// to a numeric prefix the way atoi/atof would — a typo'd knob must never
// launch a multi-hour campaign with the wrong parameters.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace icc::exp {

[[noreturn]] inline void env_fail(const char* name, const char* value, const char* want) {
  std::fprintf(stderr, "env: %s='%s' is not a valid %s\n", name, value, want);
  std::abort();
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): campaign setup reads env before the worker pool starts
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    env_fail(name, v, "integer");
  }
  return static_cast<int>(parsed);
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): campaign setup reads env before the worker pool starts
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) env_fail(name, v, "number");
  return parsed;
}

/// Returns the variable's value, or `fallback` when unset or empty.
inline std::string env_string(const char* name, const char* fallback = "") {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): campaign setup reads env before the worker pool starts
  return v != nullptr && *v != '\0' ? std::string{v} : std::string{fallback};
}

/// Across-run parallelism: worker processes/threads the exp Runner uses to
/// execute independent campaign runs concurrently. Distinct from
/// ICC_SIM_THREADS, which parallelizes *one* run via the cell executive
/// (sim/exec.hpp). Warns when both are set aggressively: N runner workers x
/// M executive workers oversubscribes the host N*M-fold, which slows both —
/// pick one axis (across runs for campaigns, within a run for single large
/// worlds).
inline int env_runner_threads(int fallback = 1) {
  const int runner = env_int("ICC_THREADS", fallback);
  const int sim = env_int("ICC_SIM_THREADS", 0);
  if (runner > 1 && sim > 1) {
    std::fprintf(stderr,
                 "env: warning: ICC_THREADS=%d and ICC_SIM_THREADS=%d are both > 1; "
                 "the host will run %d simulator threads at once. Use ICC_THREADS "
                 "for campaigns, ICC_SIM_THREADS for single large runs.\n",
                 runner, sim, runner * sim);
  }
  return runner;
}

}  // namespace icc::exp
