// Shared environment-variable knobs for benches and the campaign runner.
//
// Every bench used to carry its own copy of these helpers; they live here
// once so the knob set (ICC_RUNS, ICC_SIM_TIME, ICC_THREADS, ICC_JSON,
// ICC_CAMPAIGN_JOURNAL, ...) is parsed uniformly.
//
// Parsing is strict: a malformed value (ICC_THREADS=1O, ICC_SIM_TIME=3OO.0)
// aborts with a message naming the variable instead of silently truncating
// to a numeric prefix the way atoi/atof would — a typo'd knob must never
// launch a multi-hour campaign with the wrong parameters.
#pragma once

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace icc::exp {

[[noreturn]] inline void env_fail(const char* name, const char* value, const char* want) {
  std::fprintf(stderr, "env: %s='%s' is not a valid %s\n", name, value, want);
  std::abort();
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): campaign setup reads env before the worker pool starts
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    env_fail(name, v, "integer");
  }
  return static_cast<int>(parsed);
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): campaign setup reads env before the worker pool starts
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) env_fail(name, v, "number");
  return parsed;
}

/// Returns the variable's value, or `fallback` when unset or empty.
inline std::string env_string(const char* name, const char* fallback = "") {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe): campaign setup reads env before the worker pool starts
  return v != nullptr && *v != '\0' ? std::string{v} : std::string{fallback};
}

}  // namespace icc::exp
