// Shared environment-variable knobs for benches and the campaign runner.
//
// Every bench used to carry its own copy of these helpers; they live here
// once so the knob set (ICC_RUNS, ICC_SIM_TIME, ICC_THREADS, ICC_JSON,
// ICC_CAMPAIGN_JOURNAL, ...) is parsed uniformly.
#pragma once

#include <cstdlib>
#include <string>

namespace icc::exp {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

/// Returns the variable's value, or `fallback` when unset or empty.
inline std::string env_string(const char* name, const char* fallback = "") {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string{v} : std::string{fallback};
}

}  // namespace icc::exp
