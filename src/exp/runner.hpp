// Parallel campaign runner: a fixed thread pool self-schedules over the
// flattened (cell, run) job list (each idle worker atomically claims the
// next unclaimed job, so fast workers steal the slack of slow ones). Jobs
// are share-nothing — each constructs its own World from its derived seed —
// and results land in per-job slots, so the aggregated report is
// byte-identical for any thread count.
//
// Environment knobs (all overridable via RunnerOptions):
//   ICC_THREADS           worker count (default 1)
//   ICC_CAMPAIGN_JOURNAL  JSONL checkpoint path; existing entries are
//                         resumed, new completions appended (default: none)
// Progress ("N/M jobs (R jobs/s, ETA Ts)") goes to stderr so stdout tables
// stay clean.
#pragma once

#include <string>

#include "exp/campaign.hpp"

namespace icc::exp {

struct RunnerOptions {
  /// Worker threads; <= 0 reads ICC_THREADS (default 1). Clamped to the
  /// number of outstanding jobs.
  int threads{0};
  /// Checkpoint journal path; unset reads ICC_CAMPAIGN_JOURNAL. Empty
  /// string after both => no journal.
  std::string journal_path;
  bool journal_path_set{false};
  /// Progress reporting to stderr (default on; off for quiet tests).
  bool progress{true};

  RunnerOptions& with_threads(int n) {
    threads = n;
    return *this;
  }
  RunnerOptions& with_journal(std::string path) {
    journal_path = std::move(path);
    journal_path_set = true;
    return *this;
  }
  RunnerOptions& quiet() {
    progress = false;
    return *this;
  }
};

/// Execute every job of `campaign` (minus journal-resumed ones) and return
/// the deterministic aggregation. Throws std::runtime_error if a job throws
/// (the first error is reported; remaining jobs are abandoned).
CampaignResult run_campaign(const Campaign& campaign, const RunnerOptions& options = {});

}  // namespace icc::exp
