// Declarative experiment campaigns: a parameter grid (axes x levels), a
// number of independent runs per cell, and a per-job function that builds
// its own world and returns scalar outputs. The runner (exp/runner.hpp)
// executes the flattened (cell, run) job list on a thread pool; the
// aggregator folds job outputs into sim::SampleSeries per cell in
// deterministic (cell, run) order, so reports are byte-identical regardless
// of thread count or schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/seed.hpp"
#include "sim/metrics.hpp"

namespace icc::sim {
class RunReport;
}

namespace icc::exp {

/// Report-friendly identifier derived from a human label: lowercase
/// alphanumerics with every other character run collapsed to a single '_',
/// and no leading or trailing '_' (so "(no target)" -> "no_target", never
/// "_no_target_").
std::string report_key(const std::string& label);

/// A full-factorial parameter grid. Cells are indexed row-major with the
/// first axis slowest, matching the nested loops the benches used to write:
/// grid.axis(A).axis(B) flattens cell = a * |B| + b.
class ParamGrid {
 public:
  struct Axis {
    std::string name;
    std::vector<std::string> labels;
    std::vector<std::string> keys;  ///< report identifiers, parallel to labels
  };

  /// Append an axis. `keys` defaults to report_key of each label; when
  /// given, it must be parallel to `labels`.
  ParamGrid& axis(std::string name, std::vector<std::string> labels,
                  std::vector<std::string> keys = {});

  [[nodiscard]] std::size_t num_axes() const { return axes_.size(); }
  [[nodiscard]] const Axis& axis_at(std::size_t i) const { return axes_[i]; }

  /// Product of the axis sizes; 0 for an empty grid.
  [[nodiscard]] std::size_t num_cells() const;

  /// Index of `cell` along axis `axis` (inverse of cell_index).
  [[nodiscard]] std::size_t level(std::size_t cell, std::size_t axis) const;

  /// Flattened cell index of the given per-axis level indices.
  [[nodiscard]] std::size_t cell_index(const std::vector<std::size_t>& levels) const;

  /// Report key of a cell: per-axis keys joined with '.', first axis first
  /// (e.g. "ic_l1.m4").
  [[nodiscard]] std::string key(std::size_t cell) const;

  /// Human label of a cell: per-axis labels joined with ", ".
  [[nodiscard]] std::string label(std::size_t cell) const;

 private:
  std::vector<Axis> axes_;
};

/// Everything a job needs to run: its grid cell, run index, and the
/// deterministically derived world seed.
struct JobContext {
  std::size_t cell{0};
  int run{0};
  std::uint64_t seed{0};
};

/// A job's outputs: metric name -> samples. Most metrics are single-sample
/// scalars; multi-sample entries (e.g. one energy reading per node) feed
/// every sample into the cell's series. The key set must be the same for
/// every run of a cell, and std::map keeps aggregation order deterministic.
using JobOutputs = std::map<std::string, std::vector<double>>;

/// A declarative campaign: name (identifies journal entries), grid, runs
/// per cell, base seed, and the job function. Jobs must be share-nothing —
/// each constructs its own World from ctx.seed — because the runner invokes
/// them concurrently.
struct Campaign {
  std::string name;
  ParamGrid grid;
  int runs{1};
  std::uint64_t base_seed{1};
  /// When set, the cell index is dropped from seed derivation, so run r
  /// simulates the same world in every cell (common random numbers: cell
  /// differences are pure treatment effects). The paper's benches all use
  /// this, matching their original seeding discipline.
  bool common_random_numbers{false};
  std::function<JobOutputs(const JobContext&)> job;

  [[nodiscard]] std::size_t num_jobs() const {
    return grid.num_cells() * static_cast<std::size_t>(runs > 0 ? runs : 0);
  }

  [[nodiscard]] std::uint64_t job_seed(std::size_t cell, int run) const {
    return derive_seed(base_seed, common_random_numbers ? 0 : cell,
                       static_cast<std::uint64_t>(run));
  }
};

/// Aggregated campaign outputs: one SampleSeries per (cell, metric), built
/// by folding job outputs in (cell, run) order.
class CampaignResult {
 public:
  /// Series for a cell/metric; an empty static series when absent.
  [[nodiscard]] const sim::SampleSeries& series(std::size_t cell,
                                               const std::string& metric) const;
  /// Cross-run mean of a metric (0.0 when absent, like SampleSeries::mean).
  [[nodiscard]] double mean(std::size_t cell, const std::string& metric) const {
    return series(cell, metric).mean();
  }

  /// Add every per-cell series to `report` as "<metric>.<cell key>".
  void add_to_report(sim::RunReport& report) const;

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }

  std::size_t jobs_total{0};
  std::size_t jobs_executed{0};  ///< computed this invocation
  std::size_t jobs_resumed{0};   ///< restored from the checkpoint journal
  double elapsed_s{0.0};
  double jobs_per_s{0.0};  ///< executed jobs per wall-clock second

 private:
  friend CampaignResult aggregate_outputs(const Campaign&, const std::vector<JobOutputs>&);
  std::vector<std::map<std::string, sim::SampleSeries>> cells_;
  std::vector<std::string> cell_keys_;
};

/// Fold the flattened job outputs (indexed cell * runs + run) into per-cell
/// series. Deterministic: iterates cells, then runs, then metrics in map
/// order. Exposed for the runner and for tests.
CampaignResult aggregate_outputs(const Campaign& campaign,
                                 const std::vector<JobOutputs>& outputs);

}  // namespace icc::exp
