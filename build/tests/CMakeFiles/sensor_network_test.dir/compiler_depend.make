# Empty compiler generated dependencies file for sensor_network_test.
# This may be replaced when dependencies are built.
