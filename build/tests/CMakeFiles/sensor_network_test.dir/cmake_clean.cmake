file(REMOVE_RECURSE
  "CMakeFiles/sensor_network_test.dir/sensor/sensor_network_test.cpp.o"
  "CMakeFiles/sensor_network_test.dir/sensor/sensor_network_test.cpp.o.d"
  "sensor_network_test"
  "sensor_network_test.pdb"
  "sensor_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
