file(REMOVE_RECURSE
  "CMakeFiles/intermediate_rrep_test.dir/aodv/intermediate_rrep_test.cpp.o"
  "CMakeFiles/intermediate_rrep_test.dir/aodv/intermediate_rrep_test.cpp.o.d"
  "intermediate_rrep_test"
  "intermediate_rrep_test.pdb"
  "intermediate_rrep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intermediate_rrep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
