# Empty dependencies file for intermediate_rrep_test.
# This may be replaced when dependencies are built.
