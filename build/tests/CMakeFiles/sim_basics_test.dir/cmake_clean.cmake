file(REMOVE_RECURSE
  "CMakeFiles/sim_basics_test.dir/sim/sim_basics_test.cpp.o"
  "CMakeFiles/sim_basics_test.dir/sim/sim_basics_test.cpp.o.d"
  "sim_basics_test"
  "sim_basics_test.pdb"
  "sim_basics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_basics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
