# Empty dependencies file for voting_test.
# This may be replaced when dependencies are built.
