
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/core_basics_test.cpp" "tests/CMakeFiles/core_basics_test.dir/core/core_basics_test.cpp.o" "gcc" "tests/CMakeFiles/core_basics_test.dir/core/core_basics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traffic/CMakeFiles/icc_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/aodv/CMakeFiles/icc_aodv.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/icc_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/icc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
