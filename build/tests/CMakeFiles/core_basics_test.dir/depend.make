# Empty dependencies file for core_basics_test.
# This may be replaced when dependencies are built.
