file(REMOVE_RECURSE
  "CMakeFiles/dependability_test.dir/core/dependability_test.cpp.o"
  "CMakeFiles/dependability_test.dir/core/dependability_test.cpp.o.d"
  "dependability_test"
  "dependability_test.pdb"
  "dependability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
