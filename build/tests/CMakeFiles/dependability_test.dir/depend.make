# Empty dependencies file for dependability_test.
# This may be replaced when dependencies are built.
