file(REMOVE_RECURSE
  "CMakeFiles/mac_medium_test.dir/sim/mac_medium_test.cpp.o"
  "CMakeFiles/mac_medium_test.dir/sim/mac_medium_test.cpp.o.d"
  "mac_medium_test"
  "mac_medium_test.pdb"
  "mac_medium_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_medium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
