# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_basics_test[1]_include.cmake")
include("/root/repo/build/tests/mac_medium_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/core_basics_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/voting_test[1]_include.cmake")
include("/root/repo/build/tests/aodv_test[1]_include.cmake")
include("/root/repo/build/tests/guard_test[1]_include.cmake")
include("/root/repo/build/tests/sensor_model_test[1]_include.cmake")
include("/root/repo/build/tests/sensor_network_test[1]_include.cmake")
include("/root/repo/build/tests/dependability_test[1]_include.cmake")
include("/root/repo/build/tests/proactive_test[1]_include.cmake")
include("/root/repo/build/tests/two_hop_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/churn_test[1]_include.cmake")
include("/root/repo/build/tests/intermediate_rrep_test[1]_include.cmake")
include("/root/repo/build/tests/watchdog_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
