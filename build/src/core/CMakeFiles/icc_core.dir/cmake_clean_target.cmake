file(REMOVE_RECURSE
  "libicc_core.a"
)
