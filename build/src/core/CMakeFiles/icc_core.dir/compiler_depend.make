# Empty compiler generated dependencies file for icc_core.
# This may be replaced when dependencies are built.
