
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/icc_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/icc_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/suspicions.cpp" "src/core/CMakeFiles/icc_core.dir/suspicions.cpp.o" "gcc" "src/core/CMakeFiles/icc_core.dir/suspicions.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/core/CMakeFiles/icc_core.dir/topology.cpp.o" "gcc" "src/core/CMakeFiles/icc_core.dir/topology.cpp.o.d"
  "/root/repo/src/core/voting.cpp" "src/core/CMakeFiles/icc_core.dir/voting.cpp.o" "gcc" "src/core/CMakeFiles/icc_core.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
