file(REMOVE_RECURSE
  "CMakeFiles/icc_core.dir/framework.cpp.o"
  "CMakeFiles/icc_core.dir/framework.cpp.o.d"
  "CMakeFiles/icc_core.dir/suspicions.cpp.o"
  "CMakeFiles/icc_core.dir/suspicions.cpp.o.d"
  "CMakeFiles/icc_core.dir/topology.cpp.o"
  "CMakeFiles/icc_core.dir/topology.cpp.o.d"
  "CMakeFiles/icc_core.dir/voting.cpp.o"
  "CMakeFiles/icc_core.dir/voting.cpp.o.d"
  "libicc_core.a"
  "libicc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
