# Empty compiler generated dependencies file for icc_traffic.
# This may be replaced when dependencies are built.
