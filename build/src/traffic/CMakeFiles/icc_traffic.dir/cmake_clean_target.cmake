file(REMOVE_RECURSE
  "libicc_traffic.a"
)
