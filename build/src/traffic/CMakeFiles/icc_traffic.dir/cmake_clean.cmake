file(REMOVE_RECURSE
  "CMakeFiles/icc_traffic.dir/cbr.cpp.o"
  "CMakeFiles/icc_traffic.dir/cbr.cpp.o.d"
  "libicc_traffic.a"
  "libicc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
