
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/ft_mean.cpp" "src/fusion/CMakeFiles/icc_fusion.dir/ft_mean.cpp.o" "gcc" "src/fusion/CMakeFiles/icc_fusion.dir/ft_mean.cpp.o.d"
  "/root/repo/src/fusion/trilateration.cpp" "src/fusion/CMakeFiles/icc_fusion.dir/trilateration.cpp.o" "gcc" "src/fusion/CMakeFiles/icc_fusion.dir/trilateration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
