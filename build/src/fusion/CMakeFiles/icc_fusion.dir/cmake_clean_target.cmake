file(REMOVE_RECURSE
  "libicc_fusion.a"
)
