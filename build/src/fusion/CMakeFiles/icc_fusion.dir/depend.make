# Empty dependencies file for icc_fusion.
# This may be replaced when dependencies are built.
