file(REMOVE_RECURSE
  "CMakeFiles/icc_fusion.dir/ft_mean.cpp.o"
  "CMakeFiles/icc_fusion.dir/ft_mean.cpp.o.d"
  "CMakeFiles/icc_fusion.dir/trilateration.cpp.o"
  "CMakeFiles/icc_fusion.dir/trilateration.cpp.o.d"
  "libicc_fusion.a"
  "libicc_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
