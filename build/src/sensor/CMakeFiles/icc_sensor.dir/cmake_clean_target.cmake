file(REMOVE_RECURSE
  "libicc_sensor.a"
)
