
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/app.cpp" "src/sensor/CMakeFiles/icc_sensor.dir/app.cpp.o" "gcc" "src/sensor/CMakeFiles/icc_sensor.dir/app.cpp.o.d"
  "/root/repo/src/sensor/base_station.cpp" "src/sensor/CMakeFiles/icc_sensor.dir/base_station.cpp.o" "gcc" "src/sensor/CMakeFiles/icc_sensor.dir/base_station.cpp.o.d"
  "/root/repo/src/sensor/diffusion.cpp" "src/sensor/CMakeFiles/icc_sensor.dir/diffusion.cpp.o" "gcc" "src/sensor/CMakeFiles/icc_sensor.dir/diffusion.cpp.o.d"
  "/root/repo/src/sensor/experiment.cpp" "src/sensor/CMakeFiles/icc_sensor.dir/experiment.cpp.o" "gcc" "src/sensor/CMakeFiles/icc_sensor.dir/experiment.cpp.o.d"
  "/root/repo/src/sensor/field.cpp" "src/sensor/CMakeFiles/icc_sensor.dir/field.cpp.o" "gcc" "src/sensor/CMakeFiles/icc_sensor.dir/field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/icc_fusion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
