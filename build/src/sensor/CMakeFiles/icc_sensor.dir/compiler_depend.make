# Empty compiler generated dependencies file for icc_sensor.
# This may be replaced when dependencies are built.
