file(REMOVE_RECURSE
  "CMakeFiles/icc_sensor.dir/app.cpp.o"
  "CMakeFiles/icc_sensor.dir/app.cpp.o.d"
  "CMakeFiles/icc_sensor.dir/base_station.cpp.o"
  "CMakeFiles/icc_sensor.dir/base_station.cpp.o.d"
  "CMakeFiles/icc_sensor.dir/diffusion.cpp.o"
  "CMakeFiles/icc_sensor.dir/diffusion.cpp.o.d"
  "CMakeFiles/icc_sensor.dir/experiment.cpp.o"
  "CMakeFiles/icc_sensor.dir/experiment.cpp.o.d"
  "CMakeFiles/icc_sensor.dir/field.cpp.o"
  "CMakeFiles/icc_sensor.dir/field.cpp.o.d"
  "libicc_sensor.a"
  "libicc_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
