file(REMOVE_RECURSE
  "libicc_crypto.a"
)
