
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/model_scheme.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/model_scheme.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/model_scheme.cpp.o.d"
  "/root/repo/src/crypto/ns_lowe.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/ns_lowe.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/ns_lowe.cpp.o.d"
  "/root/repo/src/crypto/pki.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/pki.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/pki.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/prime.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/prime.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/shamir.cpp.o.d"
  "/root/repo/src/crypto/shoup_scheme.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/shoup_scheme.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/shoup_scheme.cpp.o.d"
  "/root/repo/src/crypto/threshold_rsa.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/threshold_rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/threshold_rsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
