file(REMOVE_RECURSE
  "CMakeFiles/icc_crypto.dir/bignum.cpp.o"
  "CMakeFiles/icc_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/hmac.cpp.o"
  "CMakeFiles/icc_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/model_scheme.cpp.o"
  "CMakeFiles/icc_crypto.dir/model_scheme.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/ns_lowe.cpp.o"
  "CMakeFiles/icc_crypto.dir/ns_lowe.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/pki.cpp.o"
  "CMakeFiles/icc_crypto.dir/pki.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/prime.cpp.o"
  "CMakeFiles/icc_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/rsa.cpp.o"
  "CMakeFiles/icc_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/icc_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/shamir.cpp.o"
  "CMakeFiles/icc_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/shoup_scheme.cpp.o"
  "CMakeFiles/icc_crypto.dir/shoup_scheme.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/threshold_rsa.cpp.o"
  "CMakeFiles/icc_crypto.dir/threshold_rsa.cpp.o.d"
  "libicc_crypto.a"
  "libicc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
