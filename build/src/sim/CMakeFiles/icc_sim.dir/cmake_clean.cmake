file(REMOVE_RECURSE
  "CMakeFiles/icc_sim.dir/mac.cpp.o"
  "CMakeFiles/icc_sim.dir/mac.cpp.o.d"
  "CMakeFiles/icc_sim.dir/medium.cpp.o"
  "CMakeFiles/icc_sim.dir/medium.cpp.o.d"
  "CMakeFiles/icc_sim.dir/mobility.cpp.o"
  "CMakeFiles/icc_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/icc_sim.dir/node.cpp.o"
  "CMakeFiles/icc_sim.dir/node.cpp.o.d"
  "CMakeFiles/icc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/icc_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/icc_sim.dir/world.cpp.o"
  "CMakeFiles/icc_sim.dir/world.cpp.o.d"
  "libicc_sim.a"
  "libicc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
