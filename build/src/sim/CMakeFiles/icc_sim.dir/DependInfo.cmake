
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/mac.cpp" "src/sim/CMakeFiles/icc_sim.dir/mac.cpp.o" "gcc" "src/sim/CMakeFiles/icc_sim.dir/mac.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "src/sim/CMakeFiles/icc_sim.dir/medium.cpp.o" "gcc" "src/sim/CMakeFiles/icc_sim.dir/medium.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/icc_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/icc_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/icc_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/icc_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/icc_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/icc_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/icc_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/icc_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
