# Empty compiler generated dependencies file for icc_aodv.
# This may be replaced when dependencies are built.
