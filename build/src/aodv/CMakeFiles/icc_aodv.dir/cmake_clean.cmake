file(REMOVE_RECURSE
  "CMakeFiles/icc_aodv.dir/aodv.cpp.o"
  "CMakeFiles/icc_aodv.dir/aodv.cpp.o.d"
  "CMakeFiles/icc_aodv.dir/blackhole.cpp.o"
  "CMakeFiles/icc_aodv.dir/blackhole.cpp.o.d"
  "CMakeFiles/icc_aodv.dir/blackhole_experiment.cpp.o"
  "CMakeFiles/icc_aodv.dir/blackhole_experiment.cpp.o.d"
  "CMakeFiles/icc_aodv.dir/guard.cpp.o"
  "CMakeFiles/icc_aodv.dir/guard.cpp.o.d"
  "CMakeFiles/icc_aodv.dir/watchdog.cpp.o"
  "CMakeFiles/icc_aodv.dir/watchdog.cpp.o.d"
  "libicc_aodv.a"
  "libicc_aodv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_aodv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
