
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aodv/aodv.cpp" "src/aodv/CMakeFiles/icc_aodv.dir/aodv.cpp.o" "gcc" "src/aodv/CMakeFiles/icc_aodv.dir/aodv.cpp.o.d"
  "/root/repo/src/aodv/blackhole.cpp" "src/aodv/CMakeFiles/icc_aodv.dir/blackhole.cpp.o" "gcc" "src/aodv/CMakeFiles/icc_aodv.dir/blackhole.cpp.o.d"
  "/root/repo/src/aodv/blackhole_experiment.cpp" "src/aodv/CMakeFiles/icc_aodv.dir/blackhole_experiment.cpp.o" "gcc" "src/aodv/CMakeFiles/icc_aodv.dir/blackhole_experiment.cpp.o.d"
  "/root/repo/src/aodv/guard.cpp" "src/aodv/CMakeFiles/icc_aodv.dir/guard.cpp.o" "gcc" "src/aodv/CMakeFiles/icc_aodv.dir/guard.cpp.o.d"
  "/root/repo/src/aodv/watchdog.cpp" "src/aodv/CMakeFiles/icc_aodv.dir/watchdog.cpp.o" "gcc" "src/aodv/CMakeFiles/icc_aodv.dir/watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/icc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/icc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/icc_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
