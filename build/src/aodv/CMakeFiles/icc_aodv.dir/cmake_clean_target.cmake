file(REMOVE_RECURSE
  "libicc_aodv.a"
)
