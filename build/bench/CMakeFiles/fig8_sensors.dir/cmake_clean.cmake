file(REMOVE_RECURSE
  "CMakeFiles/fig8_sensors.dir/fig8_sensors.cpp.o"
  "CMakeFiles/fig8_sensors.dir/fig8_sensors.cpp.o.d"
  "fig8_sensors"
  "fig8_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
