# Empty compiler generated dependencies file for fig8_sensors.
# This may be replaced when dependencies are built.
