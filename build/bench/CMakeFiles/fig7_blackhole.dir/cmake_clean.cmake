file(REMOVE_RECURSE
  "CMakeFiles/fig7_blackhole.dir/fig7_blackhole.cpp.o"
  "CMakeFiles/fig7_blackhole.dir/fig7_blackhole.cpp.o.d"
  "fig7_blackhole"
  "fig7_blackhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_blackhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
