# Empty compiler generated dependencies file for fig7_blackhole.
# This may be replaced when dependencies are built.
