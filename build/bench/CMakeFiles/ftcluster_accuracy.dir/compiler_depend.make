# Empty compiler generated dependencies file for ftcluster_accuracy.
# This may be replaced when dependencies are built.
