file(REMOVE_RECURSE
  "CMakeFiles/ftcluster_accuracy.dir/ftcluster_accuracy.cpp.o"
  "CMakeFiles/ftcluster_accuracy.dir/ftcluster_accuracy.cpp.o.d"
  "ftcluster_accuracy"
  "ftcluster_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftcluster_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
