file(REMOVE_RECURSE
  "CMakeFiles/grayhole_sweep.dir/grayhole_sweep.cpp.o"
  "CMakeFiles/grayhole_sweep.dir/grayhole_sweep.cpp.o.d"
  "grayhole_sweep"
  "grayhole_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grayhole_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
