# Empty compiler generated dependencies file for grayhole_sweep.
# This may be replaced when dependencies are built.
