file(REMOVE_RECURSE
  "CMakeFiles/ivs_micro.dir/ivs_micro.cpp.o"
  "CMakeFiles/ivs_micro.dir/ivs_micro.cpp.o.d"
  "ivs_micro"
  "ivs_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivs_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
