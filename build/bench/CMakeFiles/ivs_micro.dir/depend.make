# Empty dependencies file for ivs_micro.
# This may be replaced when dependencies are built.
