# Empty compiler generated dependencies file for fig8_weak_signal.
# This may be replaced when dependencies are built.
