file(REMOVE_RECURSE
  "CMakeFiles/fig8_weak_signal.dir/fig8_weak_signal.cpp.o"
  "CMakeFiles/fig8_weak_signal.dir/fig8_weak_signal.cpp.o.d"
  "fig8_weak_signal"
  "fig8_weak_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_weak_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
