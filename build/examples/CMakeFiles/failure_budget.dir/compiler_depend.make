# Empty compiler generated dependencies file for failure_budget.
# This may be replaced when dependencies are built.
