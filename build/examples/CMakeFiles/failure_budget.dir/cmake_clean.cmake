file(REMOVE_RECURSE
  "CMakeFiles/failure_budget.dir/failure_budget.cpp.o"
  "CMakeFiles/failure_budget.dir/failure_budget.cpp.o.d"
  "failure_budget"
  "failure_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
