file(REMOVE_RECURSE
  "CMakeFiles/threshold_sign.dir/threshold_sign.cpp.o"
  "CMakeFiles/threshold_sign.dir/threshold_sign.cpp.o.d"
  "threshold_sign"
  "threshold_sign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
