# Empty dependencies file for threshold_sign.
# This may be replaced when dependencies are built.
