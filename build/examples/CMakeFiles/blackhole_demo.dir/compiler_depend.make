# Empty compiler generated dependencies file for blackhole_demo.
# This may be replaced when dependencies are built.
