file(REMOVE_RECURSE
  "CMakeFiles/blackhole_demo.dir/blackhole_demo.cpp.o"
  "CMakeFiles/blackhole_demo.dir/blackhole_demo.cpp.o.d"
  "blackhole_demo"
  "blackhole_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackhole_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
